//! The FDB query engine: plans and executes join-aggregate-order tasks on
//! factorised data.
//!
//! The engine owns a catalog, registered **factorised views** (read-
//! optimised inputs, the paper's main scenario) and **flat relations**
//! (factorised on the fly as sorted tries). A [`JoinAggTask`] — the same
//! logical task the relational baselines execute — runs through:
//!
//! 1. input assembly: per-relation tries, `product`, natural-join equality
//!    selections (with attribute shadowing for name collisions);
//! 2. optimisation: the greedy heuristic (default) or exhaustive Dijkstra
//!    compiles the task into an f-plan of selections, swaps and partial
//!    aggregation operators (§5);
//! 3. execution of the f-plan on the factorisation;
//! 4. output: either the result factorisation (`FDB f/o` in the
//!    experiments) or tuple enumeration (`FDB`) — ordered with constant
//!    delay when Theorems 1/2 apply, with `HAVING` filters and `LIMIT`
//!    applied during enumeration.

use crate::enumerate::{EnumSpec, GroupCursor, TupleIter};
use crate::error::{FdbError, Result};
use crate::frep::FRep;
use crate::ftree::{AggOp, FTree};
use crate::optim::ordering::{choose_order_strategy, OrderChoice, OrderCostInputs};
use crate::optim::{exhaustive, greedy, ExhaustiveConfig, QuerySpec, Stats};
use crate::topk::TopK;
use fdb_relational::planner::JoinAggTask;
use fdb_relational::{
    dedup_sort_keys, AggFunc, AttrId, Catalog, Predicate, Relation, Schema, SortKey, Value,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// How often the enumeration sinks poll the deadline clock (rows
/// between checks). Coarse enough to stay invisible in the profile,
/// fine enough that a wedged enumeration is cut within microseconds.
const DEADLINE_CHECK_EVERY: usize = 1024;

/// Plan search strategy.
#[derive(Clone, Copy, Debug)]
pub enum PlanStrategy {
    /// §5.2 greedy heuristic (polynomial, the default).
    Greedy,
    /// §5.1 Dijkstra over the f-plan space; falls back to greedy when the
    /// state budget is exhausted.
    Exhaustive(ExhaustiveConfig),
}

/// Which f-plan executor to use (see [`crate::pipeline`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecutorMode {
    /// The staged pipeline: in-place rewrites on one shared arena,
    /// fused selection runs, one compaction pass per plan (default).
    #[default]
    Staged,
    /// The legacy path: one full copy transform per operator. Kept for
    /// the differential suites and the ablation benchmark.
    PerOp,
}

impl ExecutorMode {
    /// Runs `plan` through this executor.
    fn run_plan(
        self,
        plan: &crate::plan::FPlan,
        rep: FRep,
        threads: usize,
    ) -> Result<(FRep, crate::pipeline::ExecStats)> {
        match self {
            ExecutorMode::Staged => crate::pipeline::execute_staged(plan, rep, threads),
            ExecutorMode::PerOp => crate::pipeline::execute_per_op(plan, rep, threads),
        }
    }
}

/// Preference knob for the physical `ORDER BY` strategy (see
/// [`OrderStrategy`] for what actually executed).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OrderMode {
    /// Cost-based choice among restructure+stream, heap top-k and
    /// collect-sort-cut ([`crate::optim::ordering`]); the default.
    #[default]
    Auto,
    /// Restructure until the factorisation realises the order, then
    /// stream (falls back to collect-sort-cut when Theorem 2 cannot be
    /// made to hold, e.g. ordering by a derived `avg` column).
    ForceStream,
    /// Bounded-heap top-k over the unrestructured factorisation (needs
    /// `ORDER BY` + `LIMIT`; degrades to collect-sort-cut without one).
    /// With an `OFFSET m` the heap widens to `m + k`.
    ForceHeap,
    /// Always materialise, sort, truncate (the ablation baseline).
    ForceSort,
    /// Restructure until the order is realised, then *seek* to the
    /// `OFFSET` via the count annotations and stream the page
    /// ([`crate::enumerate::DirectCursor`]); degrades like
    /// `ForceStream` when the order cannot be realised, and to
    /// sequential streaming when residual row filters make the
    /// annotated counts unusable.
    ForceDirect,
}

/// The physical ordering strategy a result executes — decided at plan
/// time, reported by [`FdbResult::explain`], dispatched on by
/// [`FdbResult::to_relation`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OrderStrategy {
    /// No `ORDER BY`: enumeration order is unspecified; `LIMIT` cuts the
    /// stream early.
    #[default]
    Unordered,
    /// The factorisation realises the order (after any planned swaps):
    /// enumeration streams sorted, `LIMIT` stops it early (Theorem 2);
    /// an `OFFSET` enumerates-and-discards its prefix.
    StreamInTree,
    /// The factorisation realises the order *and* the result carries
    /// subtree-count annotations: seek straight to the `OFFSET`-th
    /// tuple in `O(depth · log fanout)` comparisons, then stream the
    /// page with constant delay — the skipped prefix is never
    /// enumerated ([`crate::enumerate::DirectCursor`]).
    DirectAccess,
    /// Bounded-heap top-k ([`crate::topk`]): one unordered enumeration
    /// pass through a size-`k` heap — `O(k·row)` auxiliary memory,
    /// independent of the flat result size.
    HeapTopK {
        /// The `LIMIT`.
        k: usize,
    },
    /// Full enumeration into a flat relation, stable sort, truncate.
    CollectSortCut,
}

/// Report of one enumeration pass ([`FdbResult::to_relation_counted`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OrderRunStats {
    /// The strategy that executed.
    pub strategy: OrderStrategy,
    /// Rows that passed the row filters and reached the ordering stage
    /// (for streamed strategies: rows emitted).
    pub rows_enumerated: usize,
    /// Peak bytes of ordering-side auxiliary state — the heap payload for
    /// top-k, the materialised buffer for collect-sort-cut, zero for the
    /// streamed strategies. Size-based, like [`FRep::data_bytes`], so the
    /// perf gate can hold it to a tight ratio.
    pub order_bytes: usize,
}

/// Whether to reduce the aggregate to a single attribute (§5.2 step 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConsolidateMode {
    /// Consolidate only when HAVING or ORDER BY needs the aggregate as a
    /// named node (the scenario-3 optimisation otherwise).
    Auto,
    Always,
    Never,
}

/// Options for [`FdbEngine::run`].
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`RunOptions::new`] (or [`RunOptions::default`]) and the builder
/// methods, so future knobs (deadlines, cache policy, …) are not
/// breaking changes for downstream callers:
///
/// ```
/// use fdb_core::engine::{OrderMode, RunOptions};
/// let opts = RunOptions::new().threads(4).order(OrderMode::ForceHeap);
/// assert_eq!(opts.threads, 4);
/// ```
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct RunOptions {
    pub strategy: PlanStrategy,
    pub consolidate: ConsolidateMode,
    /// Worker threads for f-representation construction, aggregation
    /// operators and the sort fallback. `1` (the default) is the exact
    /// serial path; `0` means "use the machine"
    /// ([`std::thread::available_parallelism`]). Results are identical
    /// for every thread count (see `fdb-exec`).
    pub threads: usize,
    /// F-plan executor: the staged pipeline (default) or the legacy
    /// one-copy-per-operator path; both produce bit-identical results.
    pub executor: ExecutorMode,
    /// Physical `ORDER BY` strategy preference; `Auto` (the default)
    /// picks by cost. Every mode produces identical rows — only the
    /// time/memory profile differs — which the differential suites pin.
    pub order: OrderMode,
    /// Per-run wall-clock budget covering planning, f-plan execution
    /// and enumeration. `None` (the default) never times out. The
    /// budget starts when [`FdbEngine::run`] is entered; the result's
    /// enumeration ([`FdbResult::to_relation`]) honours the *same*
    /// absolute deadline, so a slow enumeration cannot run away from a
    /// serving worker. On expiry: [`FdbError::DeadlineExceeded`].
    pub deadline: Option<std::time::Duration>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            strategy: PlanStrategy::Greedy,
            consolidate: ConsolidateMode::Auto,
            threads: 1,
            executor: ExecutorMode::Staged,
            order: OrderMode::Auto,
            deadline: None,
        }
    }
}

impl RunOptions {
    /// The default options; entry point of the builder chain.
    pub fn new() -> Self {
        RunOptions::default()
    }

    /// Sets the plan search strategy.
    pub fn strategy(mut self, strategy: PlanStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the aggregate-consolidation mode (§5.2 step 7).
    pub fn consolidate(mut self, consolidate: ConsolidateMode) -> Self {
        self.consolidate = consolidate;
        self
    }

    /// Sets the worker-thread count (`0` = use the machine).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the f-plan executor.
    pub fn executor(mut self, executor: ExecutorMode) -> Self {
        self.executor = executor;
        self
    }

    /// Sets the physical `ORDER BY` strategy preference.
    pub fn order(mut self, order: OrderMode) -> Self {
        self.order = order;
        self
    }

    /// Sets the per-run wall-clock budget (planning + execution +
    /// enumeration); `None` never times out.
    pub fn deadline(mut self, deadline: Option<std::time::Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Default options with the given worker-thread count (thin alias
    /// for `RunOptions::new().threads(n)`, kept for existing callers).
    pub fn with_threads(threads: usize) -> Self {
        RunOptions::new().threads(threads)
    }
}

/// One planned ordering candidate: the plan, whether it realises the
/// order in-tree, the realisable key prefix and the consolidation choice
/// that survived planning.
#[derive(Clone)]
struct OrderCandidate {
    tree_keys: Vec<SortKey>,
    realised: bool,
    plan: crate::plan::FPlan,
    consolidate: bool,
}

/// How one output column is produced from the enumerated raw columns.
#[derive(Clone, Debug)]
enum EmitCol {
    /// Copy a raw attribute.
    Raw(AttrId),
    /// `num / den` as a float — finalises `avg = (sum, count)` (§3.2.4).
    Div { num: AttrId, den: AttrId },
}

/// Result shape.
#[derive(Clone, Debug)]
enum ResultKind {
    /// Select-project-join: enumerate and project.
    Spj,
    /// Aggregates consolidated into named nodes: enumerate directly.
    AggConsolidated,
    /// Aggregates left as partial leaves: walk groups, evaluate on the fly
    /// (scenario 3 of the introduction).
    AggGrouped {
        group_attrs: Vec<AttrId>,
        final_funcs: Vec<AggOp>,
        func_outputs: Vec<AttrId>,
    },
    /// GROUPING SETS: the concatenation of the per-set runs, already
    /// padded to the output schema. Rows stream as-is; HAVING stays in
    /// the row filters and ordering/limit run at enumeration.
    Materialised(Relation),
}

/// A query result: the factorisation plus everything needed to emit flat
/// tuples (`FDB` mode) or keep it factorised (`FDB f/o` mode).
#[derive(Clone, Debug)]
pub struct FdbResult {
    rep: FRep,
    kind: ResultKind,
    /// Final output columns, in declared order.
    output_attrs: Vec<AttrId>,
    emit: Vec<(EmitCol, AttrId)>,
    /// Normalised (first-occurrence-deduplicated) order keys.
    order_by: Vec<SortKey>,
    /// The physical ordering strategy that executes (cost-chosen or
    /// forced via [`RunOptions::order`], then verified against the
    /// result's f-tree).
    order_strategy: OrderStrategy,
    /// HAVING conjuncts evaluated per output row (those not already pushed
    /// into the factorisation as selections).
    row_filters: Vec<Predicate>,
    limit: Option<usize>,
    /// OFFSET m: rows of the ordered output skipped before the first
    /// returned row (`0` = none).
    offset: usize,
    /// The executed f-plan (for EXPLAIN-style introspection).
    plan: crate::plan::FPlan,
    /// Execution report of the f-plan run (stages, intermediate
    /// bytes, copies avoided), including the HAVING push-down.
    exec_stats: crate::pipeline::ExecStats,
    /// Which executor produced this result (for `explain`).
    executor: ExecutorMode,
    /// Worker threads for enumeration-time work (the sort fallback),
    /// resolved from the [`RunOptions`] that produced this result.
    threads: usize,
    /// Absolute deadline carried over from the producing run
    /// ([`RunOptions::deadline`]): enumeration honours the same
    /// wall-clock budget as planning and execution did.
    deadline_at: Option<Instant>,
}

impl FdbResult {
    /// The result factorisation (`FDB f/o`).
    pub fn rep(&self) -> &FRep {
        &self.rep
    }

    /// Size of the factorised result in singletons.
    pub fn singleton_count(&self) -> usize {
        self.rep.singleton_count()
    }

    /// Output schema (declared column order).
    pub fn output_attrs(&self) -> &[AttrId] {
        &self.output_attrs
    }

    /// True when ORDER BY is realised by the factorisation itself (no
    /// sorting needed at enumeration).
    pub fn order_supported_in_tree(&self) -> bool {
        matches!(self.order_strategy, OrderStrategy::StreamInTree)
    }

    /// The physical ordering strategy this result executes.
    pub fn order_strategy(&self) -> OrderStrategy {
        self.order_strategy
    }

    /// The f-plan that produced this result.
    pub fn plan(&self) -> &crate::plan::FPlan {
        &self.plan
    }

    /// Execution report of the f-plan run: stage count, intermediate
    /// bytes allocated, fragments shared instead of copied.
    pub fn exec_stats(&self) -> crate::pipeline::ExecStats {
        self.exec_stats
    }

    /// EXPLAIN-style rendering: the executed f-plan with its stage
    /// grouping, the result f-tree, the output mode, and how
    /// ordering/limits are realised.
    pub fn explain(&self, catalog: &Catalog) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "f-plan ({} operator(s), {} stage(s)):",
            self.plan.len(),
            self.exec_stats.stages
        );
        out.push_str(&self.plan.display(catalog));
        if !self.plan.is_empty() {
            match self.executor {
                ExecutorMode::Staged => {
                    let stages = crate::pipeline::segment(&self.plan);
                    let _ = writeln!(out, "stages: {}", crate::pipeline::render_stages(&stages));
                }
                ExecutorMode::PerOp => {
                    let _ = writeln!(out, "stages: one per operator (legacy executor)");
                }
            }
        }
        let _ = writeln!(
            out,
            "execution: intermediate bytes allocated {}, fragment copies avoided {}{}",
            self.exec_stats.intermediate_bytes,
            self.exec_stats.copies_avoided,
            if self.exec_stats.compacted {
                ", compacted"
            } else {
                ""
            }
        );
        let _ = writeln!(out, "result f-tree:");
        out.push_str(&self.rep.ftree().display(catalog));
        let mode = match &self.kind {
            ResultKind::Spj => "select-project-join (enumerate + project)".to_string(),
            ResultKind::AggConsolidated => "aggregates consolidated into named nodes".to_string(),
            ResultKind::AggGrouped { final_funcs, .. } => format!(
                "grouped: {} aggregate(s) evaluated on the fly per group",
                final_funcs.len()
            ),
            ResultKind::Materialised(rel) => format!(
                "grouping sets: {} concatenated row(s), NULL-padded to the output schema",
                rel.len()
            ),
        };
        let _ = writeln!(out, "output mode: {mode}");
        // Name the strategy that actually executes — never claim
        // constant-delay streaming when row filters stretch the delay or
        // when a sort/heap pass produces the limit.
        let ordering = match self.order_strategy {
            OrderStrategy::Unordered => "none".to_string(),
            OrderStrategy::StreamInTree if self.row_filters.is_empty() => {
                "realised by the factorisation (constant-delay streaming)".to_string()
            }
            OrderStrategy::StreamInTree => format!(
                "realised by the factorisation (streamed; {} row filter(s), \
                 delay not constant)",
                self.row_filters.len()
            ),
            OrderStrategy::DirectAccess => format!(
                "direct access (offset={}, seeks=d·log f; count-annotated \
                 seek past the skipped prefix, then constant-delay \
                 streaming)",
                self.offset
            ),
            OrderStrategy::HeapTopK { k } if self.offset > 0 => format!(
                "(m+k)-heap (m={}, k={k}; bounded heap of m+k rows over the \
                 unrestructured enumeration, first m dropped)",
                self.offset
            ),
            OrderStrategy::HeapTopK { k } => format!(
                "heap top-k (k={k}; bounded heap over the unrestructured \
                 enumeration, no full materialisation)"
            ),
            OrderStrategy::CollectSortCut => {
                "collect-sort-cut (full materialisation, then sort".to_string()
                    + &match (self.offset, self.limit) {
                        (0, Some(k)) => format!(", truncate to {k})"),
                        (0, None) => ")".to_string(),
                        (m, Some(k)) => format!(", cut rows {m}..{})", m + k),
                        (m, None) => format!(", skip {m})"),
                    }
            }
        };
        let _ = writeln!(out, "ordering: {ordering}");
        if let Some(k) = self.limit {
            let _ = writeln!(out, "limit: {k}");
        }
        if self.offset > 0 {
            let _ = writeln!(out, "offset: {}", self.offset);
        }
        if !self.row_filters.is_empty() {
            let _ = writeln!(out, "row filters: {}", self.row_filters.len());
        }
        out
    }

    /// Enumerates the result into a flat relation (`FDB` mode): ordered,
    /// filtered and truncated per the query.
    pub fn to_relation(&self) -> Result<Relation> {
        Ok(self.to_relation_counted()?.0)
    }

    /// [`FdbResult::to_relation`] plus the enumeration report: which
    /// ordering strategy executed, how many filtered rows reached it, and
    /// the peak ordering-side allocation — `O(k·row)` for heap top-k vs
    /// `O(N·row)` for collect-sort-cut, which the bench ordering ablation
    /// records (`ibytes=`) and the perf gate holds to ratio.
    pub fn to_relation_counted(&self) -> Result<(Relation, OrderRunStats)> {
        let out_schema = Schema::new(self.output_attrs.clone());
        let mut out = Relation::empty(out_schema.clone());
        let mut stats = OrderRunStats {
            strategy: self.order_strategy,
            ..OrderRunStats::default()
        };
        match self.order_strategy {
            // Streamed strategies: rows arrive in final order (or no
            // order was asked for), an OFFSET discards its prefix in
            // the sink, and LIMIT stops enumeration once the page is
            // full.
            OrderStrategy::Unordered | OrderStrategy::StreamInTree => {
                let ordered = matches!(self.order_strategy, OrderStrategy::StreamInTree);
                let limit = self.limit;
                let skip = self.offset;
                let mut seen = 0usize;
                if limit != Some(0) {
                    self.enumerate_filtered(ordered, &out_schema, &mut |row| {
                        seen += 1;
                        if seen > skip {
                            out.push_row(row);
                        }
                        match limit {
                            Some(k) => out.len() < k,
                            None => true,
                        }
                    })?;
                }
                stats.rows_enumerated = seen;
            }
            // The count-annotated seek: the skipped prefix is never
            // enumerated, so the page costs O(seek + k). Plan-time
            // verification guarantees an order-realising tuple cursor
            // and no residual row filters on this path.
            OrderStrategy::DirectAccess => {
                debug_assert!(self.row_filters.is_empty());
                let mut clock = DeadlinePoll::new(self.deadline_at);
                let spec = EnumSpec::ordered(self.rep.ftree(), &self.order_by)?;
                let mut cur =
                    crate::enumerate::DirectCursor::new(&self.rep, &spec, self.offset as u64)?;
                let raw_attrs = self.raw_attrs();
                let positions = cur.positions(&raw_attrs)?;
                let mut buf: Vec<Value> = Vec::with_capacity(self.emit.len());
                while self.limit.is_none_or(|k| out.len() < k) {
                    let Some(row) = cur.next_row() else { break };
                    clock.poll("direct-access enumeration")?;
                    buf.clear();
                    self.emit_row(row, &positions, &raw_attrs, &mut buf);
                    out.push_row(&buf);
                }
                stats.rows_enumerated = out.len();
            }
            OrderStrategy::CollectSortCut => {
                self.enumerate_filtered(false, &out_schema, &mut |row| {
                    out.push_row(row);
                    true
                })?;
                stats.rows_enumerated = out.len();
                stats.order_bytes = out.len() * out.arity() * std::mem::size_of::<Value>();
                if !self.order_by.is_empty() {
                    out.sort_by_keys_par(&self.order_by, self.threads);
                }
                if self.offset > 0 || self.limit.is_some_and(|k| out.len() > k) {
                    out = fdb_relational::ops::page(&out, self.offset, self.limit);
                }
            }
            // With an OFFSET the heap widens to m+k and the first m of
            // the sorted pop-out are dropped — still O((m+k)·row)
            // auxiliary memory, independent of the flat result size.
            OrderStrategy::HeapTopK { k } => {
                let keys: Vec<(usize, fdb_relational::SortDir)> = self
                    .order_by
                    .iter()
                    .map(|key| {
                        out_schema
                            .position(key.attr)
                            .map(|p| (p, key.dir))
                            .ok_or_else(|| {
                                FdbError::Unresolved(format!(
                                    "order attribute {} not in the output schema",
                                    key.attr
                                ))
                            })
                    })
                    .collect::<Result<_>>()?;
                let mut topk = TopK::new(self.offset + k, keys);
                self.enumerate_filtered(false, &out_schema, &mut |row| {
                    topk.push(row);
                    true
                })?;
                stats.rows_enumerated = topk.rows_seen();
                stats.order_bytes = topk.peak_bytes();
                for row in topk.into_rows().iter().skip(self.offset) {
                    out.push_row(row);
                }
            }
        }
        Ok((out, stats))
    }

    /// Streams the emitted output rows that pass the row filters into
    /// `sink`; a `false` return stops enumeration. `ordered` selects the
    /// Theorem-2 visit sequence (sorted streaming); otherwise pre-order
    /// tuples / unordered groups. The producing run's deadline is
    /// polled every [`DEADLINE_CHECK_EVERY`] rows so a slow enumeration
    /// cannot wedge a serving worker.
    fn enumerate_filtered(
        &self,
        ordered: bool,
        out_schema: &Schema,
        sink: &mut dyn FnMut(&[Value]) -> bool,
    ) -> Result<()> {
        let mut clock = DeadlinePoll::new(self.deadline_at);
        let keep = |row: &[Value]| self.row_filters.iter().all(|p| p.eval(out_schema, row));
        match &self.kind {
            ResultKind::Spj | ResultKind::AggConsolidated => {
                let spec = if ordered {
                    EnumSpec::ordered(self.rep.ftree(), &self.order_by)?
                } else {
                    EnumSpec::all_preorder(self.rep.ftree())
                };
                let mut it = TupleIter::new(&self.rep, &spec)?;
                let raw_attrs = self.raw_attrs();
                let positions = it.positions(&raw_attrs)?;
                let mut buf: Vec<Value> = Vec::with_capacity(self.emit.len());
                while let Some(row) = it.next_row() {
                    clock.poll("enumeration")?;
                    buf.clear();
                    self.emit_row(row, &positions, &raw_attrs, &mut buf);
                    if keep(&buf) && !sink(&buf) {
                        break;
                    }
                }
            }
            ResultKind::AggGrouped {
                group_attrs,
                final_funcs,
                func_outputs,
            } => {
                let spec = if ordered {
                    EnumSpec::group_prefix_ordered(self.rep.ftree(), group_attrs, &self.order_by)?
                } else {
                    EnumSpec::group_prefix(self.rep.ftree(), group_attrs)?
                };
                let mut cur = GroupCursor::new(&self.rep, &spec)?;
                let cur_schema = cur.schema();
                // Raw values: group attrs (from cursor) + per-group
                // aggregate evaluations.
                let mut buf: Vec<Value> = Vec::with_capacity(self.emit.len());
                while let Some((vals, dangling)) = cur.next_group() {
                    clock.poll("group enumeration")?;
                    let mut raw: HashMap<AttrId, Value> = HashMap::new();
                    for (a, v) in cur_schema.iter().zip(vals) {
                        raw.insert(*a, v.clone());
                    }
                    for (f, o) in final_funcs.iter().zip(func_outputs) {
                        let v = crate::agg::eval_op(self.rep.ftree(), &dangling, f)?;
                        raw.insert(*o, v);
                    }
                    buf.clear();
                    for (col, _) in &self.emit {
                        buf.push(compute_emit(col, &raw)?);
                    }
                    if keep(&buf) && !sink(&buf) {
                        break;
                    }
                }
            }
            ResultKind::Materialised(rel) => {
                for row in rel.rows() {
                    clock.poll("grouping-sets enumeration")?;
                    if keep(row) && !sink(row) {
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    /// The raw tree attributes each emit column reads.
    fn raw_attrs(&self) -> Vec<AttrId> {
        let mut attrs = Vec::new();
        for (col, _) in &self.emit {
            match col {
                EmitCol::Raw(a) => attrs.push(*a),
                EmitCol::Div { num, den } => {
                    attrs.push(*num);
                    attrs.push(*den);
                }
            }
        }
        attrs.dedup();
        attrs
    }

    fn emit_row(
        &self,
        row: &[Value],
        positions: &[usize],
        raw_attrs: &[AttrId],
        buf: &mut Vec<Value>,
    ) {
        let lookup = |a: AttrId| -> &Value {
            let i = raw_attrs.iter().position(|&x| x == a).expect("raw attr");
            &row[positions[i]]
        };
        for (col, _) in &self.emit {
            match col {
                EmitCol::Raw(a) => buf.push(lookup(*a).clone()),
                EmitCol::Div { num, den } => {
                    let n = lookup(*num).as_number().expect("numeric sum").to_f64();
                    let d = lookup(*den).as_number().expect("numeric count").to_f64();
                    buf.push(Value::Float(n / d));
                }
            }
        }
    }
}

/// Cheap periodic deadline clock: polls [`Instant::now`] once every
/// [`DEADLINE_CHECK_EVERY`] calls (and on the very first call, so a
/// zero budget fails deterministically before any row is emitted).
struct DeadlinePoll {
    at: Option<Instant>,
    calls: usize,
}

impl DeadlinePoll {
    fn new(at: Option<Instant>) -> Self {
        DeadlinePoll { at, calls: 0 }
    }

    fn poll(&mut self, what: &str) -> Result<()> {
        let Some(at) = self.at else { return Ok(()) };
        let due = self.calls % DEADLINE_CHECK_EVERY == 0;
        self.calls += 1;
        if due && Instant::now() >= at {
            return Err(FdbError::DeadlineExceeded(format!(
                "run budget expired during {what}"
            )));
        }
        Ok(())
    }
}

/// One-shot deadline check (planning/execution stage boundaries).
fn check_deadline(at: Option<Instant>, what: &str) -> Result<()> {
    DeadlinePoll::new(at).poll(what)
}

fn compute_emit(col: &EmitCol, raw: &HashMap<AttrId, Value>) -> Result<Value> {
    match col {
        EmitCol::Raw(a) => raw
            .get(a)
            .cloned()
            .ok_or_else(|| FdbError::Unresolved(format!("output attribute {a} missing"))),
        EmitCol::Div { num, den } => {
            let n = raw[num].as_number().expect("numeric sum").to_f64();
            let d = raw[den].as_number().expect("numeric count").to_f64();
            Ok(Value::Float(n / d))
        }
    }
}

/// The FDB main-memory engine.
///
/// Registered inputs are held behind [`Arc`], so cloning an engine is
/// cheap — the catalog and the name tables are copied, the arenas and
/// relation buffers are **shared**. This is the snapshot discipline of
/// the serving layer: one template engine per database, one cheap clone
/// per session/worker, all readers enumerating the same immutable
/// arenas concurrently.
#[derive(Clone, Debug, Default)]
pub struct FdbEngine {
    /// Attribute catalog shared with every registered input.
    pub catalog: Catalog,
    views: HashMap<String, (Arc<FRep>, Stats)>,
    relations: HashMap<String, Arc<Relation>>,
}

impl FdbEngine {
    pub fn new(catalog: Catalog) -> Self {
        FdbEngine {
            catalog,
            views: HashMap::new(),
            relations: HashMap::new(),
        }
    }

    /// Registers a factorised view (a read-optimised materialised input).
    pub fn register_view(&mut self, name: impl Into<String>, rep: FRep) {
        self.register_view_arc(name, Arc::new(rep));
    }

    /// Registers an [`Arc`]-shared factorised view without copying the
    /// arena — the registration path of the serving layer, where the
    /// same snapshot is shared across many engines/sessions.
    pub fn register_view_arc(&mut self, name: impl Into<String>, rep: Arc<FRep>) {
        let mut stats = Stats::new();
        let size = rep.tuple_count();
        for edge in rep.ftree().deps() {
            stats.add_relation(edge.iter().copied(), size);
        }
        // Views with no multi-attribute dependencies still need coverage.
        let attrs = rep.ftree().all_attrs();
        stats.add_relation(attrs, size);
        self.views.insert(name.into(), (rep, stats));
    }

    /// Registers a flat relation (factorised on demand as a sorted trie).
    pub fn register_relation(&mut self, name: impl Into<String>, rel: Relation) {
        self.register_relation_arc(name, Arc::new(rel));
    }

    /// Registers an [`Arc`]-shared flat relation without copying it.
    pub fn register_relation_arc(&mut self, name: impl Into<String>, rel: Arc<Relation>) {
        self.relations.insert(name.into(), rel);
    }

    /// Borrow of a registered view's factorisation.
    pub fn view(&self, name: &str) -> Option<&FRep> {
        self.views.get(name).map(|(rep, _)| rep.as_ref())
    }

    /// Shared handle to a registered view's factorisation (the unit the
    /// serving layer hands to concurrent readers).
    pub fn view_arc(&self, name: &str) -> Option<Arc<FRep>> {
        self.views.get(name).map(|(rep, _)| Arc::clone(rep))
    }

    /// Shared handle to a registered flat relation.
    pub fn relation_arc(&self, name: &str) -> Option<Arc<Relation>> {
        self.relations.get(name).map(Arc::clone)
    }

    /// Names of the registered factorised views (sorted).
    pub fn view_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.views.keys().cloned().collect();
        names.sort();
        names
    }

    /// Names of the registered flat relations (sorted).
    pub fn relation_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.relations.keys().cloned().collect();
        names.sort();
        names
    }

    /// Serialises a registered view (see [`crate::io`] for the format).
    pub fn save_view(&self, name: &str, w: impl std::io::Write) -> Result<()> {
        let rep = self
            .view(name)
            .ok_or_else(|| FdbError::Unresolved(format!("unknown view `{name}`")))?;
        crate::io::write_frep(rep, &self.catalog, w)
    }

    /// Loads a serialised view and registers it under `name`, re-interning
    /// attribute names into this engine's catalog.
    pub fn load_view(&mut self, name: impl Into<String>, r: impl std::io::BufRead) -> Result<()> {
        let rep = crate::io::read_frep(r, &mut self.catalog)?;
        self.register_view(name, rep);
        Ok(())
    }

    /// Schemas of all registered inputs (for the SQL front-end).
    pub fn schemas(&self) -> HashMap<String, Schema> {
        let mut out: HashMap<String, Schema> = self
            .relations
            .iter()
            .map(|(k, v)| (k.clone(), v.schema().clone()))
            .collect();
        for (k, (rep, _)) in &self.views {
            out.insert(k.clone(), rep.schema());
        }
        out
    }

    /// Runs a task with default options (greedy, auto-consolidation).
    pub fn run_default(&mut self, task: &JoinAggTask) -> Result<FdbResult> {
        self.run(task, RunOptions::default())
    }

    /// Parses and runs a SQL query in one step (default options).
    ///
    /// ```
    /// # use fdb_core::engine::FdbEngine;
    /// # use fdb_relational::{Catalog, Relation, Schema, Value};
    /// # let mut catalog = Catalog::new();
    /// # let item = catalog.intern("item");
    /// # let price = catalog.intern("price");
    /// # let items = Relation::from_rows(
    /// #     Schema::new(vec![item, price]),
    /// #     [("base", 6), ("ham", 1)].into_iter()
    /// #         .map(|(i, p)| vec![Value::str(i), Value::Int(p)]),
    /// # );
    /// # let mut engine = FdbEngine::new(catalog);
    /// # engine.register_relation("Items", items);
    /// let out = engine
    ///     .run_sql("SELECT SUM(price) AS total FROM Items")
    ///     .unwrap();
    /// assert_eq!(out.row(0)[0], Value::Int(7));
    /// ```
    pub fn run_sql(&mut self, sql: &str) -> Result<Relation> {
        self.run_sql_result(sql)?.to_relation()
    }

    /// Parses and runs a SQL query, returning the full [`FdbResult`]
    /// (default options) — unlike [`FdbEngine::run_sql`], SQL callers
    /// keep access to `explain()`, `exec_stats()`, `order_strategy()`
    /// and factorised (`FDB f/o`) output.
    pub fn run_sql_result(&mut self, sql: &str) -> Result<FdbResult> {
        self.run_sql_with(sql, RunOptions::default())
    }

    /// [`FdbEngine::run_sql_result`] with explicit [`RunOptions`].
    pub fn run_sql_with(&mut self, sql: &str, opts: RunOptions) -> Result<FdbResult> {
        let schemas = self.schemas();
        let query = fdb_query::parse(sql, &mut self.catalog, &schemas)
            .map_err(|e| FdbError::Unresolved(format!("SQL error: {e}")))?;
        self.run(&query.to_task(), opts)
    }

    /// Plans and executes `task` on factorised inputs.
    pub fn run(&mut self, task: &JoinAggTask, opts: RunOptions) -> Result<FdbResult> {
        if !task.grouping_sets.is_empty() {
            return self.run_grouping_sets(task, opts);
        }
        let threads = fdb_exec::effective_threads(opts.threads);
        let deadline_at = opts.deadline.map(|d| Instant::now() + d);
        check_deadline(deadline_at, "input assembly")?;
        let (rep, stats, mut selections, natural_attrs) =
            self.build_input(&task.inputs, threads)?;
        check_deadline(deadline_at, "planning")?;

        let mut const_preds = Vec::new();
        for p in &task.predicates {
            match p {
                Predicate::AttrEq(a, b) => selections.push((*a, *b)),
                Predicate::AttrCmp(a, op, v) => const_preds.push((*a, *op, v.clone())),
            }
        }

        // Desugar aggregates; avg becomes (sum, count) plus a division at
        // emission (§3.2.4).
        let mut final_funcs: Vec<AggOp> = Vec::new();
        let mut final_outputs: Vec<AttrId> = Vec::new();
        let mut emit: Vec<(EmitCol, AttrId)> = Vec::new();
        let mut div_outputs: Vec<AttrId> = Vec::new();
        for g in &task.group_by {
            emit.push((EmitCol::Raw(*g), *g));
        }
        for spec in &task.aggregates {
            match spec.func {
                AggFunc::Count => {
                    final_funcs.push(AggOp::Count);
                    final_outputs.push(spec.output);
                    emit.push((EmitCol::Raw(spec.output), spec.output));
                }
                AggFunc::Sum(a) => {
                    final_funcs.push(AggOp::Sum(a));
                    final_outputs.push(spec.output);
                    emit.push((EmitCol::Raw(spec.output), spec.output));
                }
                AggFunc::Min(a) => {
                    final_funcs.push(AggOp::Min(a));
                    final_outputs.push(spec.output);
                    emit.push((EmitCol::Raw(spec.output), spec.output));
                }
                AggFunc::Max(a) => {
                    final_funcs.push(AggOp::Max(a));
                    final_outputs.push(spec.output);
                    emit.push((EmitCol::Raw(spec.output), spec.output));
                }
                AggFunc::CountDistinct(a) => {
                    final_funcs.push(AggOp::CountDistinct(a));
                    final_outputs.push(spec.output);
                    emit.push((EmitCol::Raw(spec.output), spec.output));
                }
                AggFunc::Product(a) => {
                    final_funcs.push(AggOp::Product(a));
                    final_outputs.push(spec.output);
                    emit.push((EmitCol::Raw(spec.output), spec.output));
                }
                AggFunc::Exists(a, op, c) => {
                    final_funcs.push(AggOp::Exists(a, op, c));
                    final_outputs.push(spec.output);
                    emit.push((EmitCol::Raw(spec.output), spec.output));
                }
                AggFunc::Forall(a, op, c) => {
                    final_funcs.push(AggOp::Forall(a, op, c));
                    final_outputs.push(spec.output);
                    emit.push((EmitCol::Raw(spec.output), spec.output));
                }
                AggFunc::TopK(a, k) => {
                    final_funcs.push(AggOp::TopK(a, k));
                    final_outputs.push(spec.output);
                    emit.push((EmitCol::Raw(spec.output), spec.output));
                }
                AggFunc::Avg(a) => {
                    let s = self
                        .catalog
                        .fresh(&format!("avg_sum({})", self.catalog.name(a)));
                    let n = self
                        .catalog
                        .fresh(&format!("avg_count({})", self.catalog.name(a)));
                    final_funcs.push(AggOp::Sum(a));
                    final_outputs.push(s);
                    final_funcs.push(AggOp::Count);
                    final_outputs.push(n);
                    emit.push((EmitCol::Div { num: s, den: n }, spec.output));
                    div_outputs.push(spec.output);
                }
            }
        }
        let is_aggregate = !task.aggregates.is_empty();

        // Normalised order keys: later duplicates of an attribute are
        // dropped — the first occurrence (and its direction) decides, so
        // arena-ordered streaming, heap top-k and the flat sort all honour
        // the same list (`fdb_relational::dedup_sort_keys`).
        let order_keys = dedup_sort_keys(&task.order_by);
        let has_order = !order_keys.is_empty();

        // Order analysis: keys on group attributes can always be realised
        // in the tree (after restructuring); keys on aggregate outputs
        // need consolidation; keys on avg outputs are computed columns and
        // can never be realised (heap top-k / sort handle them).
        let order_on_raw_agg = order_keys.iter().any(|k| final_outputs.contains(&k.attr));
        let having_on_raw = task.having.iter().any(|p| match p {
            Predicate::AttrCmp(a, _, _) => final_outputs.contains(a) || task.group_by.contains(a),
            Predicate::AttrEq(_, _) => false,
        });
        let consolidate_if = |needed: bool| {
            is_aggregate
                && match opts.consolidate {
                    ConsolidateMode::Always => true,
                    ConsolidateMode::Never => false,
                    ConsolidateMode::Auto => needed,
                }
        };
        // The stream candidate needs consolidation to realise an order on
        // the aggregate in-tree (Q7); the flat candidates evaluate the
        // aggregate at emission instead, so only HAVING can demand it.
        let want_consolidate_stream = consolidate_if(order_on_raw_agg || having_on_raw);
        let want_consolidate_flat = consolidate_if(having_on_raw);

        // Builds the optimiser spec for a consolidation choice and a
        // realise-the-order choice. The tree can realise the order only
        // if *all* keys are realisable (a partial prefix would still need
        // a sort), and only when the candidate asks for it at all.
        let make_parts =
            |consolidate: bool, realise_order: bool| -> (QuerySpec, Vec<SortKey>, bool) {
                let tree_keys: Vec<SortKey> = order_keys
                    .iter()
                    .copied()
                    .filter(|k| {
                        if div_outputs.contains(&k.attr) {
                            return false;
                        }
                        if is_aggregate {
                            task.group_by.contains(&k.attr)
                                || (consolidate && final_outputs.contains(&k.attr))
                        } else {
                            true
                        }
                    })
                    .collect();
                let realised = realise_order && has_order && tree_keys.len() == order_keys.len();
                let spec = QuerySpec {
                    selections: selections.clone(),
                    const_preds: const_preds.clone(),
                    projection: if is_aggregate {
                        None
                    } else {
                        Some(
                            task.projection
                                .clone()
                                .unwrap_or_else(|| natural_attrs.clone()),
                        )
                    },
                    group_by: task.group_by.clone(),
                    final_funcs: final_funcs.clone(),
                    final_outputs: final_outputs.clone(),
                    order_by: if realised {
                        tree_keys.clone()
                    } else {
                        Vec::new()
                    },
                    consolidate,
                };
                (spec, tree_keys, realised)
            };

        let plan_spec = |spec: &QuerySpec, catalog: &mut Catalog| -> Result<crate::plan::FPlan> {
            match opts.strategy {
                PlanStrategy::Greedy => greedy(rep.ftree(), spec, &stats, catalog),
                PlanStrategy::Exhaustive(cfg) => {
                    match exhaustive(rep.ftree(), spec, &stats, catalog, cfg) {
                        Ok(p) => Ok(p),
                        Err(FdbError::PlanningFailed(_)) => {
                            greedy(rep.ftree(), spec, &stats, catalog)
                        }
                        Err(e) => Err(e),
                    }
                }
            }
        };

        // Consolidation (§5.2 step 7) is not always achievable: partial
        // aggregates pinned under *different* group nodes along a path
        // cannot be gathered by upward swaps. When planning fails for that
        // reason, fall back to the grouped (scenario-3) evaluation — any
        // HAVING / ORDER BY on the aggregate is then handled at emission.
        let build_candidate = |catalog: &mut Catalog,
                               want_consolidate: bool,
                               realise_order: bool|
         -> Result<OrderCandidate> {
            let (mut spec, mut tree_keys, mut realised) =
                make_parts(want_consolidate, realise_order);
            let mut plan = plan_spec(&spec, catalog);
            let mut consolidate = want_consolidate;
            if consolidate && matches!(plan, Err(FdbError::PlanningFailed(_))) {
                consolidate = false;
                (spec, tree_keys, realised) = make_parts(false, realise_order);
                plan = greedy(rep.ftree(), &spec, &stats, catalog);
            }
            Ok(OrderCandidate {
                tree_keys,
                realised,
                plan: plan?,
                consolidate,
            })
        };

        // Strategy decision: which plan to run and how to order output.
        // Forced modes pick their candidate directly; `Auto` with a LIMIT
        // prices restructure+stream against heap top-k and
        // collect-sort-cut over the non-restructuring plan.
        let row_width = if is_aggregate {
            emit.len()
        } else {
            task.projection
                .as_ref()
                .map(|p| p.len())
                .unwrap_or(natural_attrs.len())
        };
        let (cand, mut order_strategy) = if !has_order {
            let c = build_candidate(&mut self.catalog, want_consolidate_stream, false)?;
            (c, OrderStrategy::Unordered)
        } else {
            match (opts.order, task.limit) {
                (OrderMode::ForceSort, _) | (OrderMode::ForceHeap, None) => {
                    let c = build_candidate(&mut self.catalog, want_consolidate_flat, false)?;
                    (c, OrderStrategy::CollectSortCut)
                }
                (OrderMode::ForceHeap, Some(k)) => {
                    let c = build_candidate(&mut self.catalog, want_consolidate_flat, false)?;
                    (c, OrderStrategy::HeapTopK { k })
                }
                (OrderMode::ForceDirect, _) => {
                    let c = build_candidate(&mut self.catalog, want_consolidate_stream, true)?;
                    let s = if c.realised {
                        OrderStrategy::DirectAccess
                    } else {
                        OrderStrategy::CollectSortCut
                    };
                    (c, s)
                }
                (OrderMode::ForceStream, _) => {
                    let c = build_candidate(&mut self.catalog, want_consolidate_stream, true)?;
                    let s = if c.realised {
                        OrderStrategy::StreamInTree
                    } else {
                        OrderStrategy::CollectSortCut
                    };
                    (c, s)
                }
                (OrderMode::Auto, None) if task.offset == 0 => {
                    let c = build_candidate(&mut self.catalog, want_consolidate_stream, true)?;
                    let s = if c.realised {
                        OrderStrategy::StreamInTree
                    } else {
                        OrderStrategy::CollectSortCut
                    };
                    (c, s)
                }
                (OrderMode::Auto, k_opt) => {
                    let stream_cand =
                        build_candidate(&mut self.catalog, want_consolidate_stream, true)?;
                    // When no key is realisable and the consolidation
                    // choice matches, the two candidate specs are
                    // identical — skip the second optimiser search.
                    let flat_cand = if !stream_cand.realised
                        && want_consolidate_stream == want_consolidate_flat
                    {
                        stream_cand.clone()
                    } else {
                        build_candidate(&mut self.catalog, want_consolidate_flat, false)?
                    };
                    let stream_plan_cost = stream_cand.realised.then(|| {
                        crate::optim::ordering::plan_cost(rep.ftree(), &stream_cand.plan, &stats)
                    });
                    let unordered_plan_cost =
                        crate::optim::ordering::plan_cost(rep.ftree(), &flat_cand.plan, &stats);
                    let est_rows = {
                        let mut scratch = rep.ftree().clone();
                        flat_cand.plan.simulate(&mut scratch)?;
                        crate::optim::ordering::estimate_rows(
                            &scratch,
                            &stats,
                            &task.group_by,
                            is_aggregate,
                        )
                    };
                    // The direct seek is priced only when the stream
                    // plan realises the order on a tuple-cursor result
                    // shape with no residual row filters — the same
                    // conditions the post-execution verification
                    // enforces. d·log f per seek, with d the result
                    // tree's depth bound (live node count) and the
                    // per-level fanout bounded by the row estimate.
                    let direct_seek_cost = (stream_cand.realised
                        && task.offset > 0
                        && task.having.is_empty()
                        && (!is_aggregate || stream_cand.consolidate))
                        .then(|| {
                            let mut scratch = rep.ftree().clone();
                            let d = match stream_cand.plan.simulate(&mut scratch) {
                                Ok(()) => scratch.live_nodes().len(),
                                Err(_) => rep.ftree().live_nodes().len(),
                            };
                            d.max(1) as f64 * est_rows.max(2.0).log2()
                        });
                    match choose_order_strategy(&OrderCostInputs {
                        stream_plan_cost,
                        unordered_plan_cost,
                        est_rows,
                        k: k_opt,
                        offset: task.offset,
                        direct_seek_cost,
                        row_width,
                    }) {
                        OrderChoice::Stream => (stream_cand, OrderStrategy::StreamInTree),
                        OrderChoice::Direct => (stream_cand, OrderStrategy::DirectAccess),
                        OrderChoice::Heap => {
                            let k = k_opt.expect("heap choice requires a LIMIT");
                            (flat_cand, OrderStrategy::HeapTopK { k })
                        }
                        OrderChoice::Sort => (flat_cand, OrderStrategy::CollectSortCut),
                    }
                }
            }
        };
        let OrderCandidate {
            tree_keys,
            plan,
            consolidate,
            ..
        } = cand;
        check_deadline(deadline_at, "plan execution")?;
        let (mut result_rep, mut exec_stats) = opts.executor.run_plan(&plan, rep, threads)?;
        check_deadline(deadline_at, "plan execution")?;

        // HAVING: push what we can into the factorisation as selections;
        // the rest (e.g. conditions on avg) filters rows at emission.
        // HAVING never changes the f-tree, so the pushable predicates
        // batch into one fused in-place filter walk (per-op mode keeps
        // the legacy one-copy-per-selection path for the differential
        // suites); the allocation joins the exec-stats accounting.
        let mut row_filters: Vec<Predicate> = Vec::new();
        let mut pushed: Vec<(AttrId, fdb_relational::CmpOp, Value)> = Vec::new();
        for p in &task.having {
            match p {
                Predicate::AttrCmp(a, op, v) if result_rep.ftree().node_of_attr(*a).is_some() => {
                    pushed.push((*a, *op, v.clone()));
                }
                other => row_filters.push(other.clone()),
            }
        }
        if !pushed.is_empty() {
            // Run the pushed predicates as a mini f-plan through the
            // same executor as the main plan, so the selection fusion,
            // the garbage-driven compaction and the allocation
            // accounting all live in one place (`crate::pipeline`).
            let mut having_plan = crate::plan::FPlan::new();
            for (attr, op, value) in pushed {
                having_plan.push(crate::plan::FOp::SelectConst { attr, op, value });
            }
            let (rep, hstats) = opts.executor.run_plan(&having_plan, result_rep, threads)?;
            result_rep = rep;
            exec_stats.intermediate_bytes += hstats.intermediate_bytes;
            exec_stats.copies_avoided += hstats.copies_avoided;
            exec_stats.compacted |= hstats.compacted;
        }

        let output_attrs: Vec<AttrId> = if is_aggregate {
            emit.iter().map(|(_, out)| *out).collect()
        } else {
            let proj = task
                .projection
                .clone()
                .unwrap_or_else(|| natural_attrs.clone());
            emit = proj.iter().map(|&a| (EmitCol::Raw(a), a)).collect();
            proj
        };

        let kind = if !is_aggregate {
            ResultKind::Spj
        } else if consolidate {
            ResultKind::AggConsolidated
        } else {
            ResultKind::AggGrouped {
                group_attrs: task.group_by.clone(),
                final_funcs,
                func_outputs: final_outputs,
            }
        };

        // Verify a streamed order really is realised on the *result*
        // f-tree (defensive: degrade to heap top-k / sort rather than
        // return wrongly ordered data). Direct access additionally
        // needs a tuple cursor (no grouped on-the-fly evaluation) and
        // no residual row filters — the count annotations count *all*
        // tuples, so a filter would make the seek land on the wrong
        // row; it then degrades to sequential streaming when the order
        // still holds.
        if matches!(
            order_strategy,
            OrderStrategy::StreamInTree | OrderStrategy::DirectAccess
        ) {
            let verified = match &kind {
                ResultKind::Spj | ResultKind::AggConsolidated => {
                    crate::enumerate::supports_order(result_rep.ftree(), &tree_keys)
                }
                ResultKind::AggGrouped { group_attrs, .. } => {
                    EnumSpec::group_prefix_ordered(result_rep.ftree(), group_attrs, &tree_keys)
                        .is_ok()
                }
                // Built by `run_grouping_sets`, never on this path.
                ResultKind::Materialised(_) => false,
            };
            let fallback = |limit: Option<usize>| match limit {
                Some(k) => OrderStrategy::HeapTopK { k },
                None => OrderStrategy::CollectSortCut,
            };
            if matches!(order_strategy, OrderStrategy::DirectAccess) {
                let tuple_cursor = matches!(kind, ResultKind::Spj | ResultKind::AggConsolidated);
                if !(verified && tuple_cursor && row_filters.is_empty()) {
                    order_strategy = if verified {
                        OrderStrategy::StreamInTree
                    } else {
                        fallback(task.limit)
                    };
                }
            } else if !verified {
                order_strategy = fallback(task.limit);
            }
        }

        Ok(FdbResult {
            rep: result_rep,
            kind,
            output_attrs,
            emit,
            order_by: order_keys,
            order_strategy,
            row_filters,
            limit: task.limit,
            offset: task.offset,
            plan,
            exec_stats,
            executor: opts.executor,
            threads,
            deadline_at,
        })
    }

    /// GROUPING SETS (and its ROLLUP/CUBE sugar): one factorised run per
    /// grouping set; each sub-result is enumerated, NULL-padded to the
    /// full output schema and concatenated in set order. HAVING stays in
    /// the row filters and ORDER BY/LIMIT execute at enumeration, which
    /// mirrors the relational twin (`RdbEngine::run_grouping_sets`)
    /// row-for-row.
    fn run_grouping_sets(&mut self, task: &JoinAggTask, opts: RunOptions) -> Result<FdbResult> {
        let threads = fdb_exec::effective_threads(opts.threads);
        let output_attrs = task.output_attrs();
        let mut out = Relation::empty(Schema::new(output_attrs.clone()));
        let mut last: Option<FdbResult> = None;
        for set in &task.grouping_sets {
            let sub = JoinAggTask {
                group_by: set.clone(),
                grouping_sets: Vec::new(),
                having: Vec::new(),
                order_by: Vec::new(),
                limit: None,
                offset: 0,
                ..task.clone()
            };
            let result = self.run(&sub, opts)?;
            let rel = result.to_relation()?;
            let positions: Vec<Option<usize>> = output_attrs
                .iter()
                .map(|&a| rel.schema().position(a))
                .collect();
            let mut row_buf: Vec<Value> = Vec::with_capacity(output_attrs.len());
            for row in rel.rows() {
                row_buf.clear();
                for p in &positions {
                    row_buf.push(match p {
                        Some(i) => row[*i].clone(),
                        None => Value::Null,
                    });
                }
                out.push_row(&row_buf);
            }
            last = Some(result);
        }
        let last = last.ok_or_else(|| {
            FdbError::Unresolved("GROUPING SETS task carries no grouping sets".into())
        })?;
        let order_keys = dedup_sort_keys(&task.order_by);
        let order_strategy = if order_keys.is_empty() {
            OrderStrategy::Unordered
        } else {
            OrderStrategy::CollectSortCut
        };
        Ok(FdbResult {
            rep: last.rep,
            kind: ResultKind::Materialised(out),
            emit: output_attrs.iter().map(|&a| (EmitCol::Raw(a), a)).collect(),
            output_attrs,
            order_by: order_keys,
            order_strategy,
            row_filters: task.having.clone(),
            limit: task.limit,
            offset: task.offset,
            plan: last.plan,
            exec_stats: last.exec_stats,
            executor: opts.executor,
            threads,
            deadline_at: last.deadline_at,
        })
    }

    /// Assembles the input factorisation for the task's `FROM` list:
    /// registered views are cloned, flat relations are factorised as
    /// sorted tries (join attributes towards the root); name collisions
    /// across inputs are shadowed and returned as pending equality
    /// selections (the natural-join conditions).
    #[allow(clippy::type_complexity)]
    fn build_input(
        &mut self,
        inputs: &[String],
        threads: usize,
    ) -> Result<(FRep, Stats, Vec<(AttrId, AttrId)>, Vec<AttrId>)> {
        if inputs.is_empty() {
            return Err(FdbError::Unresolved("query has no inputs".into()));
        }
        if inputs.len() == 1 {
            if let Some((rep, stats)) = self.views.get(&inputs[0]) {
                let natural = rep.ftree().all_attrs();
                return Ok((FRep::clone(rep), stats.clone(), Vec::new(), natural));
            }
        }
        // Shared attributes across the original input schemas determine
        // both the trie orders and the join conditions.
        let schemas: Vec<Vec<AttrId>> = inputs
            .iter()
            .map(|name| {
                if let Some((rep, _)) = self.views.get(name) {
                    Ok(rep.ftree().all_attrs())
                } else if let Some(rel) = self.relations.get(name) {
                    Ok(rel.schema().attrs().to_vec())
                } else {
                    Err(FdbError::Unresolved(format!("unknown input `{name}`")))
                }
            })
            .collect::<Result<_>>()?;
        let shared = |a: AttrId, except: usize| {
            schemas
                .iter()
                .enumerate()
                .any(|(j, s)| j != except && s.contains(&a))
        };

        let mut combined: Option<FRep> = None;
        let mut stats = Stats::new();
        let mut selections: Vec<(AttrId, AttrId)> = Vec::new();
        let mut seen: Vec<AttrId> = Vec::new();
        let mut natural: Vec<AttrId> = Vec::new();
        for (i, name) in inputs.iter().enumerate() {
            let mut rep = if let Some((rep, _)) = self.views.get(name) {
                FRep::clone(rep)
            } else {
                let rel: &Relation = &self.relations[name];
                // Trie order: shared (join) attributes first.
                let mut order: Vec<AttrId> = schemas[i]
                    .iter()
                    .copied()
                    .filter(|&a| shared(a, i))
                    .collect();
                order.extend(schemas[i].iter().copied().filter(|&a| !shared(a, i)));
                FRep::from_relation_with(rel, FTree::path(&order), threads)?
            };
            let size = rep.tuple_count();
            // Shadow attributes already seen: rename in this input's copy
            // and record the equality selection.
            let mut attrs_after = Vec::new();
            for a in rep.ftree().all_attrs() {
                if seen.contains(&a) {
                    let shadow = self
                        .catalog
                        .fresh(&format!("{}@{}", self.catalog.name(a), name));
                    rep = crate::ops::rename(rep, a, shadow)?;
                    selections.push((a, shadow));
                    attrs_after.push(shadow);
                } else {
                    seen.push(a);
                    natural.push(a);
                    attrs_after.push(a);
                }
            }
            stats.add_relation(attrs_after, size);
            combined = Some(match combined {
                None => rep,
                Some(acc) => crate::ops::product(acc, rep),
            });
        }
        Ok((
            combined.expect("at least one input"),
            stats,
            selections,
            natural,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_relational::{AggSpec, CmpOp, SortDir};

    /// Base relations of the running example (natural-join keys shared).
    fn engine() -> FdbEngine {
        let mut catalog = Catalog::new();
        let customer = catalog.intern("customer");
        let date = catalog.intern("date");
        let package = catalog.intern("package");
        let item = catalog.intern("item");
        let price = catalog.intern("price");
        let orders = Relation::from_rows(
            Schema::new(vec![customer, date, package]),
            [
                ("Mario", 1, "Capricciosa"),
                ("Mario", 2, "Margherita"),
                ("Pietro", 5, "Hawaii"),
                ("Lucia", 5, "Hawaii"),
                ("Mario", 5, "Capricciosa"),
            ]
            .into_iter()
            .map(|(c, d, p)| vec![Value::str(c), Value::Int(d), Value::str(p)]),
        );
        let packages = Relation::from_rows(
            Schema::new(vec![package, item]),
            [
                ("Margherita", "base"),
                ("Capricciosa", "base"),
                ("Capricciosa", "ham"),
                ("Capricciosa", "mushrooms"),
                ("Hawaii", "base"),
                ("Hawaii", "ham"),
                ("Hawaii", "pineapple"),
            ]
            .into_iter()
            .map(|(p, i)| vec![Value::str(p), Value::str(i)]),
        );
        let items = Relation::from_rows(
            Schema::new(vec![item, price]),
            [("base", 6), ("ham", 1), ("mushrooms", 1), ("pineapple", 2)]
                .into_iter()
                .map(|(i, p)| vec![Value::str(i), Value::Int(p)]),
        );
        let mut e = FdbEngine::new(catalog);
        e.register_relation("Orders", orders);
        e.register_relation("Packages", packages);
        e.register_relation("Items", items);
        e
    }

    fn revenue_task(e: &mut FdbEngine) -> JoinAggTask {
        let customer = e.catalog.lookup("customer").unwrap();
        let price = e.catalog.lookup("price").unwrap();
        let revenue = e.catalog.intern("revenue");
        JoinAggTask {
            inputs: vec!["Orders".into(), "Packages".into(), "Items".into()],
            group_by: vec![customer],
            aggregates: vec![AggSpec::new(AggFunc::Sum(price), revenue)],
            ..Default::default()
        }
    }

    #[test]
    fn revenue_per_customer_from_flat_inputs() {
        let mut e = engine();
        let task = revenue_task(&mut e);
        let result = e.run_default(&task).unwrap();
        let rel = result.to_relation().unwrap();
        let rows: Vec<(String, i64)> = rel
            .rows()
            .map(|r| (r[0].as_str().unwrap().to_string(), r[1].as_int().unwrap()))
            .collect();
        let mut sorted = rows.clone();
        sorted.sort();
        assert_eq!(
            sorted,
            vec![
                ("Lucia".to_string(), 9),
                ("Mario".to_string(), 22),
                ("Pietro".to_string(), 9)
            ]
        );
    }

    #[test]
    fn ordered_by_group_attribute_streams_sorted() {
        let mut e = engine();
        let mut task = revenue_task(&mut e);
        let customer = e.catalog.lookup("customer").unwrap();
        task.order_by = vec![SortKey::asc(customer)];
        let result = e.run_default(&task).unwrap();
        assert!(result.order_supported_in_tree());
        let rel = result.to_relation().unwrap();
        assert!(rel.is_sorted_by(&[SortKey::asc(customer)]));
        assert_eq!(rel.len(), 3);
    }

    #[test]
    fn ordered_by_aggregate_consolidates() {
        // Q7-style: ORDER BY revenue DESC.
        let mut e = engine();
        let mut task = revenue_task(&mut e);
        let revenue = e.catalog.lookup("revenue").unwrap();
        task.order_by = vec![SortKey::desc(revenue)];
        let result = e.run_default(&task).unwrap();
        assert!(result.order_supported_in_tree());
        let rel = result.to_relation().unwrap();
        let revs: Vec<i64> = rel.rows().map(|r| r[1].as_int().unwrap()).collect();
        assert_eq!(revs, vec![22, 9, 9]);
    }

    #[test]
    fn limit_with_order() {
        let mut e = engine();
        let mut task = revenue_task(&mut e);
        let revenue = e.catalog.lookup("revenue").unwrap();
        task.order_by = vec![SortKey::desc(revenue)];
        task.limit = Some(1);
        let rel = e.run_default(&task).unwrap().to_relation().unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.row(0)[0], Value::str("Mario"));
    }

    #[test]
    fn having_filters_groups() {
        let mut e = engine();
        let mut task = revenue_task(&mut e);
        let revenue = e.catalog.lookup("revenue").unwrap();
        task.having = vec![Predicate::AttrCmp(revenue, CmpOp::Gt, Value::Int(10))];
        let rel = e.run_default(&task).unwrap().to_relation().unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.row(0)[0], Value::str("Mario"));
    }

    #[test]
    fn avg_is_emitted_as_division() {
        let mut e = engine();
        let price = e.catalog.lookup("price").unwrap();
        let customer = e.catalog.lookup("customer").unwrap();
        let m = e.catalog.intern("mean_price");
        let task = JoinAggTask {
            inputs: vec!["Orders".into(), "Packages".into(), "Items".into()],
            group_by: vec![customer],
            aggregates: vec![AggSpec::new(AggFunc::Avg(price), m)],
            order_by: vec![SortKey::asc(customer)],
            ..Default::default()
        };
        let rel = e.run_default(&task).unwrap().to_relation().unwrap();
        // Lucia: (6+1+2)/3 = 3.0.
        assert_eq!(rel.row(0)[1], Value::Float(3.0));
    }

    #[test]
    fn count_and_min_max() {
        let mut e = engine();
        let price = e.catalog.lookup("price").unwrap();
        let package = e.catalog.lookup("package").unwrap();
        let n = e.catalog.intern("n_parts");
        let cheapest = e.catalog.intern("cheapest");
        let dearest = e.catalog.intern("dearest");
        let task = JoinAggTask {
            inputs: vec!["Packages".into(), "Items".into()],
            group_by: vec![package],
            aggregates: vec![
                AggSpec::new(AggFunc::Count, n),
                AggSpec::new(AggFunc::Min(price), cheapest),
                AggSpec::new(AggFunc::Max(price), dearest),
            ],
            order_by: vec![SortKey::asc(package)],
            ..Default::default()
        };
        let rel = e.run_default(&task).unwrap().to_relation().unwrap();
        let rows: Vec<(String, i64, i64, i64)> = rel
            .rows()
            .map(|r| {
                (
                    r[0].as_str().unwrap().to_string(),
                    r[1].as_int().unwrap(),
                    r[2].as_int().unwrap(),
                    r[3].as_int().unwrap(),
                )
            })
            .collect();
        assert_eq!(
            rows,
            vec![
                ("Capricciosa".to_string(), 3, 1, 6),
                ("Hawaii".to_string(), 3, 1, 6),
                ("Margherita".to_string(), 1, 6, 6),
            ]
        );
    }

    #[test]
    fn spj_with_projection_and_order() {
        let mut e = engine();
        let package = e.catalog.lookup("package").unwrap();
        let item = e.catalog.lookup("item").unwrap();
        let task = JoinAggTask {
            inputs: vec!["Packages".into(), "Items".into()],
            projection: Some(vec![item, package]),
            order_by: vec![SortKey::asc(item), SortKey::asc(package)],
            limit: Some(4),
            ..Default::default()
        };
        let result = e.run_default(&task).unwrap();
        assert!(result.order_supported_in_tree());
        let rel = result.to_relation().unwrap();
        assert_eq!(rel.len(), 4);
        assert!(rel.is_sorted_by(&[SortKey::asc(item), SortKey::asc(package)]));
        assert_eq!(rel.row(0)[0], Value::str("base"));
    }

    #[test]
    fn where_predicates_are_applied() {
        let mut e = engine();
        let price = e.catalog.lookup("price").unwrap();
        let mut task = revenue_task(&mut e);
        task.predicates = vec![Predicate::AttrCmp(price, CmpOp::Le, Value::Int(2))];
        let rel = e.run_default(&task).unwrap().to_relation().unwrap();
        let rows: Vec<(String, i64)> = rel
            .canonical()
            .rows()
            .map(|r| (r[0].as_str().unwrap().to_string(), r[1].as_int().unwrap()))
            .collect();
        // Cheap toppings only: Lucia 3, Mario 2·2=4, Pietro 3.
        assert_eq!(
            rows,
            vec![
                ("Lucia".to_string(), 3),
                ("Mario".to_string(), 4),
                ("Pietro".to_string(), 3)
            ]
        );
    }

    #[test]
    fn factorised_view_input() {
        // Materialise the join as a view (SPJ run), then aggregate on it.
        let mut e = engine();
        let spj = JoinAggTask {
            inputs: vec!["Orders".into(), "Packages".into(), "Items".into()],
            ..Default::default()
        };
        let view = e.run_default(&spj).unwrap();
        let rep = view.rep().clone();
        let flat_count = rep.tuple_count();
        e.register_view("R", rep);
        let task = {
            let customer = e.catalog.lookup("customer").unwrap();
            let price = e.catalog.lookup("price").unwrap();
            let revenue2 = e.catalog.intern("revenue_view");
            JoinAggTask {
                inputs: vec!["R".into()],
                group_by: vec![customer],
                aggregates: vec![AggSpec::new(AggFunc::Sum(price), revenue2)],
                order_by: vec![SortKey::asc(customer)],
                ..Default::default()
            }
        };
        let rel = e.run_default(&task).unwrap().to_relation().unwrap();
        let rows: Vec<(String, i64)> = rel
            .rows()
            .map(|r| (r[0].as_str().unwrap().to_string(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(
            rows,
            vec![
                ("Lucia".to_string(), 9),
                ("Mario".to_string(), 22),
                ("Pietro".to_string(), 9)
            ]
        );
        assert_eq!(flat_count, 13);
    }

    #[test]
    fn exhaustive_strategy_agrees_with_greedy() {
        let mut e = engine();
        let task = revenue_task(&mut e);
        let g = e
            .run(&task, RunOptions::default())
            .unwrap()
            .to_relation()
            .unwrap()
            .canonical();
        let x = e
            .run(
                &task,
                RunOptions::new().strategy(PlanStrategy::Exhaustive(ExhaustiveConfig::default())),
            )
            .unwrap()
            .to_relation()
            .unwrap()
            .canonical();
        assert_eq!(g, x);
    }

    #[test]
    fn consolidate_modes_agree() {
        let mut e = engine();
        let task = revenue_task(&mut e);
        let never = e
            .run(&task, RunOptions::new().consolidate(ConsolidateMode::Never))
            .unwrap()
            .to_relation()
            .unwrap()
            .canonical();
        let always = e
            .run(
                &task,
                RunOptions::new().consolidate(ConsolidateMode::Always),
            )
            .unwrap()
            .to_relation()
            .unwrap()
            .canonical();
        assert_eq!(never, always);
    }

    #[test]
    fn descending_group_order() {
        let mut e = engine();
        let mut task = revenue_task(&mut e);
        let customer = e.catalog.lookup("customer").unwrap();
        task.order_by = vec![SortKey {
            attr: customer,
            dir: SortDir::Desc,
        }];
        let rel = e.run_default(&task).unwrap().to_relation().unwrap();
        let names: Vec<&str> = rel.rows().map(|r| r[0].as_str().unwrap()).collect();
        assert_eq!(names, vec!["Pietro", "Mario", "Lucia"]);
    }

    #[test]
    fn explain_describes_plan_and_mode() {
        let mut e = engine();
        let mut task = revenue_task(&mut e);
        let revenue = e.catalog.lookup("revenue").unwrap();
        task.order_by = vec![SortKey::desc(revenue)];
        task.limit = Some(2);
        let result = e
            .run(&task, RunOptions::new().order(OrderMode::ForceStream))
            .unwrap();
        assert!(!result.plan().is_empty());
        let text = result.explain(&e.catalog);
        assert!(text.contains("f-plan"), "{text}");
        assert!(text.contains("stage(s)"), "{text}");
        assert!(text.contains("stages: "), "{text}");
        assert!(text.contains("intermediate bytes allocated"), "{text}");
        assert!(text.contains("result f-tree"), "{text}");
        assert!(
            text.contains("constant-delay streaming"),
            "Q7-style ordering is realised in-tree under ForceStream: {text}"
        );
        assert!(text.contains("limit: 2"), "{text}");
        // The plan must mention the aggregation operator.
        assert!(text.contains("γ["), "{text}");
    }

    #[test]
    fn explain_names_the_executed_strategy() {
        // The ordering line must report what actually runs — never claim
        // constant-delay streaming for a heap or sort execution.
        let mut e = engine();
        let mut task = revenue_task(&mut e);
        let revenue = e.catalog.lookup("revenue").unwrap();
        task.order_by = vec![SortKey::desc(revenue)];
        task.limit = Some(2);
        for (mode, needle) in [
            (OrderMode::ForceHeap, "heap top-k (k=2"),
            (OrderMode::ForceSort, "collect-sort-cut"),
        ] {
            let result = e.run(&task, RunOptions::new().order(mode)).unwrap();
            let text = result.explain(&e.catalog);
            assert!(text.contains(needle), "{mode:?}: {text}");
            assert!(
                !text.contains("constant-delay streaming"),
                "{mode:?} must not claim streaming: {text}"
            );
        }
        // A streamed order with residual row filters is not constant-delay
        // and the explain output must say so.
        let mut task = revenue_task(&mut e);
        let customer = e.catalog.lookup("customer").unwrap();
        let m = e.catalog.intern("m_avg");
        task.aggregates.push(AggSpec::new(
            AggFunc::Avg(e.catalog.lookup("price").unwrap()),
            m,
        ));
        task.order_by = vec![SortKey::asc(customer)];
        task.having = vec![Predicate::AttrCmp(m, CmpOp::Gt, Value::Float(0.0))];
        let result = e.run_default(&task).unwrap();
        assert!(result.order_supported_in_tree());
        let text = result.explain(&e.catalog);
        assert!(text.contains("row filter(s)"), "{text}");
        assert!(text.contains("delay not constant"), "{text}");
        assert!(!text.contains("constant-delay streaming"), "{text}");
    }

    #[test]
    fn force_direct_seeks_the_offset_page() {
        // Direct access must return exactly the sort-skip-cut page while
        // enumerating only the page itself — the skipped prefix is
        // seeked past, never emitted.
        let mut e = engine();
        let package = e.catalog.lookup("package").unwrap();
        let item = e.catalog.lookup("item").unwrap();
        let task = JoinAggTask {
            inputs: vec!["Packages".into(), "Items".into()],
            projection: Some(vec![item, package]),
            order_by: vec![SortKey::asc(item), SortKey::asc(package)],
            limit: Some(3),
            offset: 2,
            ..Default::default()
        };
        let direct = e
            .run(&task, RunOptions::new().order(OrderMode::ForceDirect))
            .unwrap();
        assert_eq!(direct.order_strategy(), OrderStrategy::DirectAccess);
        let (rows, stats) = direct.to_relation_counted().unwrap();
        let reference = e
            .run(&task, RunOptions::new().order(OrderMode::ForceSort))
            .unwrap()
            .to_relation()
            .unwrap();
        assert_eq!(rows, reference);
        assert_eq!(rows.len(), 3);
        assert_eq!(
            stats.rows_enumerated, 3,
            "direct access must not enumerate the skipped prefix"
        );
        let text = direct.explain(&e.catalog);
        assert!(
            text.contains("direct access (offset=2, seeks=d·log f"),
            "{text}"
        );
        assert!(text.contains("offset: 2"), "{text}");
        // A past-the-end offset yields an empty page, not an error.
        let mut deep = task.clone();
        deep.offset = 10_000;
        let rel = e
            .run(&deep, RunOptions::new().order(OrderMode::ForceDirect))
            .unwrap()
            .to_relation()
            .unwrap();
        assert!(rel.is_empty());
    }

    #[test]
    fn offset_widens_the_heap_and_explains_mk() {
        // ORDER BY revenue DESC LIMIT 1 OFFSET 1 under ForceHeap: the
        // heap holds m+k rows, the first m are dropped, and the explain
        // output names the (m+k)-heap — never constant delay.
        let mut e = engine();
        let mut task = revenue_task(&mut e);
        let revenue = e.catalog.lookup("revenue").unwrap();
        task.order_by = vec![SortKey::desc(revenue)];
        task.limit = Some(1);
        task.offset = 1;
        let heap = e
            .run(&task, RunOptions::new().order(OrderMode::ForceHeap))
            .unwrap();
        assert_eq!(heap.order_strategy(), OrderStrategy::HeapTopK { k: 1 });
        let (rows, stats) = heap.to_relation_counted().unwrap();
        let reference = e
            .run(&task, RunOptions::new().order(OrderMode::ForceSort))
            .unwrap()
            .to_relation()
            .unwrap();
        assert_eq!(rows, reference);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows.row(0)[1], Value::Int(9));
        // The heap saw every group, not just the page.
        assert_eq!(stats.rows_enumerated, 3);
        let text = heap.explain(&e.catalog);
        assert!(text.contains("(m+k)-heap (m=1, k=1"), "{text}");
        assert!(!text.contains("constant-delay"), "{text}");
    }

    #[test]
    fn direct_degrades_when_row_filters_or_grouping_block_the_seek() {
        // Residual row filters make the count annotations unusable (they
        // count unfiltered tuples): ForceDirect must degrade to
        // sequential streaming and the explain output must not claim a
        // seek.
        let mut e = engine();
        let mut task = revenue_task(&mut e);
        let customer = e.catalog.lookup("customer").unwrap();
        let m = e.catalog.intern("m_direct");
        task.aggregates.push(AggSpec::new(
            AggFunc::Avg(e.catalog.lookup("price").unwrap()),
            m,
        ));
        task.order_by = vec![SortKey::asc(customer)];
        task.having = vec![Predicate::AttrCmp(m, CmpOp::Gt, Value::Float(0.0))];
        task.offset = 1;
        let result = e
            .run(&task, RunOptions::new().order(OrderMode::ForceDirect))
            .unwrap();
        assert_eq!(result.order_strategy(), OrderStrategy::StreamInTree);
        let rows = result.to_relation().unwrap();
        let reference = e
            .run(&task, RunOptions::new().order(OrderMode::ForceSort))
            .unwrap()
            .to_relation()
            .unwrap();
        assert_eq!(rows, reference);
        assert!(!result.explain(&e.catalog).contains("direct access"));
        // Grouped on-the-fly evaluation has no tuple cursor either: with
        // consolidation disabled the seek degrades to the group stream.
        let mut grouped = revenue_task(&mut e);
        grouped.order_by = vec![SortKey::asc(customer)];
        grouped.offset = 1;
        let result = e
            .run(
                &grouped,
                RunOptions::new()
                    .order(OrderMode::ForceDirect)
                    .consolidate(ConsolidateMode::Never),
            )
            .unwrap();
        assert_eq!(result.order_strategy(), OrderStrategy::StreamInTree);
        let rows = result.to_relation().unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.is_sorted_by(&[SortKey::asc(customer)]));
    }

    #[test]
    fn auto_prices_offset_pages_and_stays_correct() {
        // Auto with OFFSET (with and without LIMIT) must return the
        // sort-skip-cut page whatever strategy the cost model picks.
        let mut e = engine();
        let package = e.catalog.lookup("package").unwrap();
        let item = e.catalog.lookup("item").unwrap();
        for (limit, offset) in [(Some(2), 3), (None, 3), (Some(2), 0), (None, 10_000)] {
            let task = JoinAggTask {
                inputs: vec!["Packages".into(), "Items".into()],
                projection: Some(vec![item, package]),
                order_by: vec![SortKey::asc(item), SortKey::asc(package)],
                limit,
                offset,
                ..Default::default()
            };
            let auto = e.run_default(&task).unwrap();
            let rows = auto.to_relation().unwrap();
            let reference = e
                .run(&task, RunOptions::new().order(OrderMode::ForceSort))
                .unwrap()
                .to_relation()
                .unwrap();
            assert_eq!(rows, reference, "limit {limit:?} offset {offset}");
        }
    }

    #[test]
    fn auto_picks_heap_for_unrealisable_order_with_limit() {
        // ORDER BY avg LIMIT 1: Theorem 2 can never hold (a derived
        // division column); with a LIMIT the cost model must pick the
        // bounded heap over collect-sort-cut — and the rows agree.
        let mut e = engine();
        let price = e.catalog.lookup("price").unwrap();
        let customer = e.catalog.lookup("customer").unwrap();
        let m = e.catalog.intern("mean_topk");
        let task = JoinAggTask {
            inputs: vec!["Orders".into(), "Packages".into(), "Items".into()],
            group_by: vec![customer],
            aggregates: vec![AggSpec::new(AggFunc::Avg(price), m)],
            order_by: vec![SortKey::desc(m)],
            limit: Some(1),
            ..Default::default()
        };
        let auto = e.run_default(&task).unwrap();
        assert_eq!(auto.order_strategy(), OrderStrategy::HeapTopK { k: 1 });
        assert!(!auto.order_supported_in_tree());
        let (rows, stats) = auto.to_relation_counted().unwrap();
        assert_eq!(stats.strategy, OrderStrategy::HeapTopK { k: 1 });
        assert!(stats.order_bytes > 0);
        let sorted = e
            .run(&task, RunOptions::new().order(OrderMode::ForceSort))
            .unwrap()
            .to_relation()
            .unwrap();
        assert_eq!(rows, sorted);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn executor_modes_agree_and_report_stats() {
        let mut e = engine();
        let task = revenue_task(&mut e);
        let staged = e.run(&task, RunOptions::default()).unwrap();
        let per_op = e
            .run(&task, RunOptions::new().executor(ExecutorMode::PerOp))
            .unwrap();
        assert!(staged.rep().same_data(per_op.rep()));
        assert_eq!(
            staged.to_relation().unwrap().canonical(),
            per_op.to_relation().unwrap().canonical()
        );
        let (s, p) = (staged.exec_stats(), per_op.exec_stats());
        assert_eq!(s.operators, p.operators);
        assert!(s.stages <= p.stages);
        assert!(s.copies_avoided > 0);
        // Single-operator plans can legitimately allocate slightly more
        // under the staged executor (append + compaction vs one copy);
        // the strict inequality below is a multi-operator property, so
        // pin that precondition first with a clear message.
        assert!(
            s.operators >= 2,
            "revenue plan is no longer multi-operator; revisit the ibytes assertion"
        );
        assert!(
            s.intermediate_bytes < p.intermediate_bytes,
            "staged {} >= per-op {}",
            s.intermediate_bytes,
            p.intermediate_bytes
        );
    }

    #[test]
    fn zero_deadline_fails_deterministically() {
        // A zero budget must be cut at the first checkpoint — before any
        // planning work — with the dedicated error, not a wrong result.
        let mut e = engine();
        let task = revenue_task(&mut e);
        let err = e
            .run(
                &task,
                RunOptions::new().deadline(Some(std::time::Duration::ZERO)),
            )
            .unwrap_err();
        assert!(matches!(err, FdbError::DeadlineExceeded(_)), "{err}");
        // Without a deadline the same task runs to completion.
        assert!(e.run(&task, RunOptions::new().deadline(None)).is_ok());
    }

    #[test]
    fn deadline_cuts_enumeration_of_a_finished_run() {
        // The absolute deadline rides on the result: a run that finishes
        // planning in time but whose enumeration starts after expiry is
        // cut during `to_relation`.
        let mut e = engine();
        let task = revenue_task(&mut e);
        let result = e
            .run(
                &task,
                RunOptions::new().deadline(Some(std::time::Duration::from_millis(30))),
            )
            .expect("small plan beats a 30 ms budget");
        std::thread::sleep(std::time::Duration::from_millis(40));
        let err = result.to_relation().unwrap_err();
        assert!(matches!(err, FdbError::DeadlineExceeded(_)), "{err}");
    }

    #[test]
    fn run_sql_result_exposes_explain_and_stats() {
        let mut e = engine();
        let result = e
            .run_sql_result(
                "SELECT customer, SUM(price) AS revenue \
                 FROM Orders, Packages, Items \
                 GROUP BY customer ORDER BY revenue DESC LIMIT 2",
            )
            .unwrap();
        let text = result.explain(&e.catalog);
        assert!(text.contains("f-plan"), "{text}");
        assert!(result.exec_stats().operators > 0);
        let rel = result.to_relation().unwrap();
        assert_eq!(rel.len(), 2);
        // `run_sql` routes through the same path.
        let rows = e
            .run_sql(
                "SELECT customer, SUM(price) AS revenue \
                 FROM Orders, Packages, Items \
                 GROUP BY customer ORDER BY revenue DESC LIMIT 2",
            )
            .unwrap();
        assert_eq!(rel, rows);
    }

    #[test]
    fn cloned_engines_share_views_and_agree() {
        // Engine clones share Arc'd inputs: both run the same query and
        // agree byte-for-byte, and the view arena is not duplicated.
        let mut e = engine();
        let spj = JoinAggTask {
            inputs: vec!["Orders".into(), "Packages".into(), "Items".into()],
            ..Default::default()
        };
        let rep = e.run_default(&spj).unwrap().rep().clone();
        e.register_view("V", rep);
        let mut clone = e.clone();
        assert!(Arc::ptr_eq(
            &e.view_arc("V").unwrap(),
            &clone.view_arc("V").unwrap()
        ));
        let sql = "SELECT customer, SUM(price) AS r FROM V GROUP BY customer ORDER BY customer";
        let a = e.run_sql(sql).unwrap();
        let b = clone.run_sql(sql).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn explain_reports_sort_fallback_for_avg_order() {
        let mut e = engine();
        let price = e.catalog.lookup("price").unwrap();
        let customer = e.catalog.lookup("customer").unwrap();
        let m = e.catalog.intern("m");
        let task = JoinAggTask {
            inputs: vec!["Orders".into(), "Packages".into(), "Items".into()],
            group_by: vec![customer],
            aggregates: vec![AggSpec::new(AggFunc::Avg(price), m)],
            order_by: vec![SortKey::desc(m)],
            ..Default::default()
        };
        let result = e.run_default(&task).unwrap();
        assert!(!result.order_supported_in_tree());
        let text = result.explain(&e.catalog);
        assert!(text.contains("collect-sort-cut"), "{text}");
    }
}
