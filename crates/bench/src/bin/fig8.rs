//! Figure 8 — ORD queries with and without LIMIT 10 (Experiment 4:
//! partial sorting via restructuring of factorisations).
//!
//! Q10 asks for the stored order (no work for anyone); Q11 asks for a
//! different order the f-tree *also* supports (FDB: nothing to do, the
//! baselines re-sort from scratch); Q12 needs one swap for FDB; Q13
//! re-sorts the Orders relation, where FDB swaps date and customer and
//! keeps the package lists sorted. The `lim` variants return the first 10
//! tuples: constant-delay enumeration makes them nearly free for FDB
//! after restructuring, while the baselines still pay the full sort.
//!
//! `cargo run --release -p fdb-bench --bin fig8 -- --scale 8`

use fdb_bench::{median_secs, paper_queries, Args, BenchSetup, QueryClass};
use fdb_workload::orders::OrdersConfig;

fn main() {
    let args = Args::parse(4, 4);
    let scale = args.scale;
    let mut emit = args.emitter();
    println!("# Figure 8: ORD queries ± LIMIT 10 on materialised views at scale {scale}");
    let mut env = BenchSetup {
        config: OrdersConfig {
            scale,
            customers: args.customers,
            seed: 0xFDB,
        },
        materialise_flat: true,
        threads: args.threads,
    }
    .build();
    let attrs = env.attrs;
    let queries = paper_queries(&mut env.fdb.catalog, &attrs);
    env.rdb_sort.catalog = env.fdb.catalog.clone();
    env.rdb_hash.catalog = env.fdb.catalog.clone();
    for q in queries.iter().filter(|q| q.class == QueryClass::Ord) {
        for limit in [None, Some(10usize)] {
            let mut task = q.task.clone();
            task.limit = limit;
            let engine_suffix = if limit.is_some() { " lim" } else { "" };
            let (n, t) = median_secs(args.repeats, || env.run_fdb_flat(&task));
            emit.row(
                "8",
                scale,
                q.name,
                &format!("FDB{engine_suffix}"),
                t,
                &format!("rows={n}"),
            );
            let keys = task.order_by.clone();
            let input = q.input;
            let (n, t) = median_secs(args.repeats, || env.run_rdb_ord(input, &keys, limit));
            emit.row(
                "8",
                scale,
                q.name,
                &format!("RDB{engine_suffix}"),
                t,
                &format!("rows={n}"),
            );
        }
    }
    emit.finish();
}
