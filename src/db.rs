//! The session API: a shared, registrable database ([`Db`]) handing out
//! cheap immutable snapshots ([`Session`]) that answer SQL with a full
//! result report ([`QueryOutcome`]).
//!
//! This is the facade the serving layer (`fdb-server`), the examples,
//! the benches and the integration tests route through. The design
//! follows the paper's build-once-query-many premise:
//!
//! * a [`Db`] owns one **template engine** whose registered inputs
//!   (factorised views and flat relations) live behind `Arc` — the flat
//!   arena of PR 3 makes an immutable snapshot four vector handles;
//! * [`Db::session`] clones the template under a short lock: the clone
//!   copies the catalog and the name tables but **shares** every arena
//!   and relation buffer. A session is therefore a consistent snapshot —
//!   registrations that happen later are invisible to it;
//! * many sessions on many threads read the same arenas concurrently;
//!   results are byte-identical to the single-threaded library run
//!   (pinned by `tests/shared_snapshot.rs` and the oracle sweep);
//! * [`Db`] tracks an **epoch** bumped on every registration, so a
//!   long-lived worker can cheaply detect staleness and re-snapshot.
//!
//! ```
//! use fdb::{Db, Value};
//! use fdb::relational::{Relation, Schema};
//!
//! let db = Db::open();
//! let (item, price) = {
//!     let mut cat = db.catalog();
//!     (cat.intern("item"), cat.intern("price"))
//! };
//! # let _ = item;
//! let rel = Relation::from_rows(
//!     Schema::new(vec![item, price]),
//!     [("base", 6), ("ham", 1)]
//!         .into_iter()
//!         .map(|(i, p)| vec![Value::str(i), Value::Int(p)]),
//! );
//! db.register_relation("Items", rel);
//! let mut session = db.session();
//! let out = session.query("SELECT SUM(price) AS total FROM Items").unwrap();
//! assert_eq!(out.rows.row(0)[0], Value::Int(7));
//! assert_eq!(out.columns, vec!["total"]);
//! assert!(out.explain.contains("f-plan"));
//! ```

use crate::core::engine::{FdbEngine, OrderStrategy, RunOptions};
use crate::core::error::FdbError;
use crate::core::{ExecStats, FRep, OrderRunStats, Result};
use crate::query::Statement;
use crate::relational::{Catalog, Predicate, Relation, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A shared database: the registration surface plus a template engine
/// from which immutable [`Session`] snapshots are cloned.
///
/// `Db` is `Clone` + `Send` + `Sync`; clones are handles to the same
/// underlying database (the serving layer passes one per worker).
#[derive(Clone, Debug)]
pub struct Db {
    inner: Arc<DbInner>,
}

#[derive(Debug)]
struct DbInner {
    /// The template engine. Mutated only by registrations; sessions
    /// clone it under the lock (cheap: inputs are `Arc`-shared).
    template: Mutex<FdbEngine>,
    /// Bumped on every registration; lets workers detect stale
    /// snapshots without taking the template lock.
    epoch: AtomicU64,
}

impl Db {
    /// An empty database with a fresh catalog.
    pub fn open() -> Db {
        Db::from_engine(FdbEngine::new(Catalog::new()))
    }

    /// Wraps an already-populated engine (the benches and tests build
    /// their datasets through `FdbEngine` setup helpers).
    pub fn from_engine(engine: FdbEngine) -> Db {
        Db {
            inner: Arc::new(DbInner {
                template: Mutex::new(engine),
                epoch: AtomicU64::new(1),
            }),
        }
    }

    /// Locked access to the template engine's catalog (interning
    /// attributes before building relations by hand).
    pub fn catalog(&self) -> CatalogGuard<'_> {
        CatalogGuard { guard: self.lock() }
    }

    fn lock(&self) -> MutexGuard<'_, FdbEngine> {
        self.inner
            .template
            .lock()
            .expect("fdb::Db template lock poisoned")
    }

    /// Registers a flat relation; visible to sessions opened afterwards.
    pub fn register_relation(&self, name: impl Into<String>, rel: Relation) {
        self.lock().register_relation(name, rel);
        self.bump();
    }

    /// Registers a factorised view; visible to sessions opened afterwards.
    pub fn register_view(&self, name: impl Into<String>, rep: FRep) {
        self.lock().register_view(name, rep);
        self.bump();
    }

    /// Loads a serialised view (the `fdbv1` format of `fdb_core::io`)
    /// and registers it under `name`.
    pub fn load_view(&self, name: impl Into<String>, r: impl std::io::BufRead) -> Result<()> {
        self.lock().load_view(name, r)?;
        self.bump();
        Ok(())
    }

    /// The current registration epoch (starts at 1, bumped on every
    /// registration). A [`Session`] records the epoch it was cut at;
    /// `session.epoch() != db.epoch()` means the snapshot is stale.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    fn bump(&self) {
        self.inner.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Cuts an immutable snapshot: a [`Session`] holding its own cheap
    /// clone of the template engine (shared arenas, private catalog).
    pub fn session(&self) -> Session {
        let engine = self.lock().clone();
        Session {
            engine,
            opts: RunOptions::default(),
            epoch: self.epoch(),
        }
    }

    /// Names of the registered relations and views `(relations, views)`,
    /// both sorted (the serving layer's `STATS` report).
    pub fn input_names(&self) -> (Vec<String>, Vec<String>) {
        let engine = self.lock();
        (engine.relation_names(), engine.view_names())
    }

    // -----------------------------------------------------------------
    // Write path (MVCC over copy-on-write snapshots)
    // -----------------------------------------------------------------
    //
    // A write never touches a published input in place. Under the
    // template lock it clones the target (for a factorised view the
    // clone is a flat-table memcpy; the delta mutators then rewrite
    // only the spine, sharing every untouched fragment — see
    // `fdb_core::update`), re-registers the mutated copy, and bumps the
    // epoch once. Sessions cut before the write keep their own `Arc`s
    // to the old snapshot and are unaffected; the serving layer's plan
    // cache is keyed by epoch, so the bump retires every cached
    // response built over the pre-write state.

    /// Inserts `rows` (laid out per the table's registered schema) into
    /// a registered view or relation; returns how many were new (set
    /// semantics). One snapshot swap and one epoch bump however many
    /// rows are given.
    pub fn insert(
        &self,
        table: impl Into<String>,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<usize> {
        let mut batch = self.begin_batch();
        let table = table.into();
        for row in rows {
            batch.insert(&table, row);
        }
        Ok(batch.commit()?.inserted)
    }

    /// Deletes one exact row; returns whether it was present.
    pub fn delete_row(&self, table: impl Into<String>, row: Vec<Value>) -> Result<bool> {
        let mut batch = self.begin_batch();
        batch.delete_row(table, row);
        Ok(batch.commit()?.deleted > 0)
    }

    /// Deletes every row satisfying all `predicates` (an empty list
    /// deletes everything); returns how many went.
    pub fn delete_where(
        &self,
        table: impl Into<String>,
        predicates: Vec<Predicate>,
    ) -> Result<usize> {
        let mut batch = self.begin_batch();
        batch.delete_where(table, predicates);
        Ok(batch.commit()?.deleted)
    }

    /// Starts a write batch: queued operations apply atomically on
    /// [`WriteBatch::commit`] — one template lock, one copy-on-write
    /// clone per touched input, one epoch bump. Readers see either none
    /// or all of the batch.
    pub fn begin_batch(&self) -> WriteBatch<'_> {
        WriteBatch {
            db: self,
            ops: Vec::new(),
        }
    }

    /// Parses and applies one SQL write statement —
    /// `INSERT INTO r [(cols)] VALUES (…), …` or
    /// `DELETE FROM r [WHERE a = c AND …]` — against the registered
    /// inputs. `SELECT` text is rejected here: reads go through
    /// [`Session::query`] so they run on an immutable snapshot.
    pub fn execute(&self, sql: &str) -> Result<WriteReport> {
        // Parse under the template lock (the statement resolves against
        // the live schemas), then reuse the batch machinery.
        let stmt = {
            let mut engine = self.lock();
            let schemas = engine.schemas();
            crate::query::parse_statement(sql, &mut engine.catalog, &schemas)
                .map_err(|e| FdbError::InvalidOperator(e.to_string()))?
        };
        match stmt {
            Statement::Insert(ins) => {
                let mut batch = self.begin_batch();
                for row in ins.rows {
                    batch.insert(&ins.table, row);
                }
                batch.commit()
            }
            Statement::Delete(del) => {
                let mut batch = self.begin_batch();
                batch.delete_where(del.table, del.predicates);
                batch.commit()
            }
            Statement::Select(_) => Err(FdbError::InvalidOperator(
                "SELECT is not a write; open a Session and use query()".into(),
            )),
        }
    }
}

/// One queued write of a [`WriteBatch`].
enum WriteOp {
    Insert(Vec<Value>),
    DeleteRow(Vec<Value>),
    DeleteWhere(Vec<Predicate>),
}

/// What a committed batch did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteReport {
    /// Rows that were actually new (set semantics).
    pub inserted: usize,
    /// Rows that were present and removed.
    pub deleted: usize,
}

/// An atomic group of writes against one [`Db`] — see
/// [`Db::begin_batch`]. Queuing performs no work and takes no lock;
/// everything happens in [`WriteBatch::commit`].
pub struct WriteBatch<'a> {
    db: &'a Db,
    ops: Vec<(String, WriteOp)>,
}

impl WriteBatch<'_> {
    /// Queues an insert of `row` (in the table's registered schema
    /// order).
    pub fn insert(&mut self, table: impl Into<String>, row: Vec<Value>) -> &mut Self {
        self.ops.push((table.into(), WriteOp::Insert(row)));
        self
    }

    /// Queues a delete of one exact row.
    pub fn delete_row(&mut self, table: impl Into<String>, row: Vec<Value>) -> &mut Self {
        self.ops.push((table.into(), WriteOp::DeleteRow(row)));
        self
    }

    /// Queues a predicate delete (empty list = delete everything).
    pub fn delete_where(&mut self, table: impl Into<String>, preds: Vec<Predicate>) -> &mut Self {
        self.ops.push((table.into(), WriteOp::DeleteWhere(preds)));
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Applies the queued writes atomically: one template lock, one
    /// copy-on-write clone per touched input (re-registered only on
    /// success of the whole batch), one epoch bump — and none at all
    /// when no row actually changed, keeping cached responses valid
    /// across no-op writes.
    pub fn commit(self) -> Result<WriteReport> {
        let mut report = WriteReport::default();
        if self.ops.is_empty() {
            return Ok(report);
        }
        let mut engine = self.db.lock();
        // Copy-on-write working set: each touched input is cloned once
        // per batch however many ops hit it.
        let mut views: HashMap<String, FRep> = HashMap::new();
        let mut rels: HashMap<String, Relation> = HashMap::new();
        for (table, op) in &self.ops {
            if !views.contains_key(table) && !rels.contains_key(table) {
                if let Some(rep) = engine.view_arc(table) {
                    views.insert(table.clone(), FRep::clone(&rep));
                } else if let Some(rel) = engine.relation_arc(table) {
                    rels.insert(table.clone(), Relation::clone(&rel));
                } else {
                    return Err(FdbError::Unresolved(format!(
                        "no registered view or relation named `{table}`"
                    )));
                }
            }
            if let Some(rep) = views.get_mut(table) {
                apply_to_view(rep, op, &mut report)?;
            } else if let Some(rel) = rels.get_mut(table) {
                apply_to_relation(rel, op, &mut report)?;
            }
        }
        let changed = report.inserted + report.deleted > 0;
        if changed {
            for (name, rep) in views {
                engine.register_view_arc(name, Arc::new(rep));
            }
            for (name, rel) in rels {
                engine.register_relation_arc(name, Arc::new(rel));
            }
        }
        drop(engine);
        if changed {
            self.db.bump();
        }
        Ok(report)
    }
}

fn check_row_arity(row: &[Value], arity: usize) -> Result<()> {
    if row.len() != arity {
        return Err(FdbError::InvalidOperator(format!(
            "write row has {} values, table schema has {arity}",
            row.len()
        )));
    }
    Ok(())
}

/// Pre-checks that every predicate attribute is in `schema` (the
/// relational `Predicate::eval` panics on unresolved attributes).
fn check_predicates(preds: &[Predicate], schema: &crate::relational::Schema) -> Result<()> {
    for p in preds {
        for a in p.attrs() {
            if !schema.contains(a) {
                return Err(FdbError::Unresolved(format!(
                    "predicate attribute {a} is not in the table schema"
                )));
            }
        }
    }
    Ok(())
}

fn apply_to_view(rep: &mut FRep, op: &WriteOp, report: &mut WriteReport) -> Result<()> {
    match op {
        WriteOp::Insert(row) => {
            if rep.insert(row)? {
                report.inserted += 1;
            }
        }
        WriteOp::DeleteRow(row) => {
            if rep.delete(row)? {
                report.deleted += 1;
            }
        }
        WriteOp::DeleteWhere(preds) => {
            let schema = rep.schema();
            check_predicates(preds, &schema)?;
            // Collect matches first: the delta delete rewrites the
            // spine, so mutation under enumeration is off the table.
            let mut victims: Vec<Vec<Value>> = Vec::new();
            rep.for_each_tuple(|row| {
                if preds.iter().all(|p| p.eval(&schema, row)) {
                    victims.push(row.to_vec());
                }
            });
            for row in victims {
                if rep.delete(&row)? {
                    report.deleted += 1;
                }
            }
        }
    }
    Ok(())
}

fn apply_to_relation(rel: &mut Relation, op: &WriteOp, report: &mut WriteReport) -> Result<()> {
    match op {
        WriteOp::Insert(row) => {
            check_row_arity(row, rel.arity())?;
            if rel.insert(row) {
                report.inserted += 1;
            }
        }
        WriteOp::DeleteRow(row) => {
            check_row_arity(row, rel.arity())?;
            if rel.delete_row(row) {
                report.deleted += 1;
            }
        }
        WriteOp::DeleteWhere(preds) => {
            let schema = rel.schema().clone();
            check_predicates(preds, &schema)?;
            report.deleted += rel.delete_where(|row| preds.iter().all(|p| p.eval(&schema, row)));
        }
    }
    Ok(())
}

impl Default for Db {
    fn default() -> Self {
        Db::open()
    }
}

/// RAII view of the template engine's catalog (see [`Db::catalog`]).
pub struct CatalogGuard<'a> {
    guard: MutexGuard<'a, FdbEngine>,
}

impl std::ops::Deref for CatalogGuard<'_> {
    type Target = Catalog;
    fn deref(&self) -> &Catalog {
        &self.guard.catalog
    }
}

impl std::ops::DerefMut for CatalogGuard<'_> {
    fn deref_mut(&mut self) -> &mut Catalog {
        &mut self.guard.catalog
    }
}

/// An immutable snapshot of a [`Db`] plus per-session run options.
///
/// Sessions are `Send`: the serving layer keeps one per worker thread
/// and refreshes it when the epoch moves. All methods take `&mut self`
/// only because each run interns fresh output attributes into the
/// session's private catalog copy — the shared data is never written.
#[derive(Clone, Debug)]
pub struct Session {
    engine: FdbEngine,
    opts: RunOptions,
    epoch: u64,
}

impl Session {
    /// The [`Db::epoch`] this snapshot was cut at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The session's default run options (applied by [`Session::query`]).
    pub fn options(&self) -> RunOptions {
        self.opts
    }

    /// Replaces the session's default run options.
    pub fn set_options(&mut self, opts: RunOptions) {
        self.opts = opts;
    }

    /// Builder-style [`Session::set_options`].
    pub fn with_options(mut self, opts: RunOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The session's catalog (attribute names of this snapshot).
    pub fn catalog(&self) -> &Catalog {
        &self.engine.catalog
    }

    /// The underlying engine (escape hatch for task-level callers; the
    /// differential suites run `JoinAggTask`s directly through it).
    pub fn engine_mut(&mut self) -> &mut FdbEngine {
        &mut self.engine
    }

    /// Parses and runs `sql` with the session options, returning the
    /// enumerated rows plus the full execution report.
    pub fn query(&mut self, sql: &str) -> Result<QueryOutcome> {
        self.query_with(sql, self.opts)
    }

    /// [`Session::query`] with explicit per-call options (the serving
    /// layer threads per-request deadlines through here).
    pub fn query_with(&mut self, sql: &str, opts: RunOptions) -> Result<QueryOutcome> {
        let result = self.engine.run_sql_with(sql, opts)?;
        let explain = result.explain(&self.engine.catalog);
        let strategy = result.order_strategy();
        let exec = result.exec_stats();
        let (rows, order) = result.to_relation_counted()?;
        let columns = rows
            .schema()
            .attrs()
            .iter()
            .map(|&a| self.engine.catalog.name(a).to_string())
            .collect();
        Ok(QueryOutcome {
            rows,
            columns,
            explain,
            strategy,
            exec,
            order,
        })
    }

    /// The EXPLAIN text of `sql` under the session options: plans and
    /// executes the f-plan but does **not** enumerate the result.
    pub fn explain(&mut self, sql: &str) -> Result<String> {
        let result = self.engine.run_sql_with(sql, self.opts)?;
        Ok(result.explain(&self.engine.catalog))
    }
}

/// Everything one query run produced: the flat rows, the column names
/// in declared order, the EXPLAIN rendering, and the execution reports
/// of the plan run and the enumeration pass.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The enumerated result (ordered, filtered and truncated per the
    /// query).
    pub rows: Relation,
    /// Output column names in declared order.
    pub columns: Vec<String>,
    /// EXPLAIN-style rendering of the executed f-plan.
    pub explain: String,
    /// The physical `ORDER BY` strategy that executed.
    pub strategy: OrderStrategy,
    /// Stage/allocation report of the f-plan run.
    pub exec: ExecStats,
    /// Enumeration report: strategy, rows enumerated, ordering-side
    /// peak bytes.
    pub order: OrderRunStats,
}

impl QueryOutcome {
    /// True when the query enumerated no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of enumerated rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }
}
