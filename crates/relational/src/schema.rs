//! Relation schemas: ordered lists of distinct attributes.

use crate::attr::{AttrId, Catalog};
use std::fmt;

/// An ordered list of distinct attributes.
///
/// Column order matters for tuple layout; set-like queries (`contains`,
/// intersection with another schema) are provided on top.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Schema {
    attrs: Vec<AttrId>,
}

impl Schema {
    /// Builds a schema from attribute ids.
    ///
    /// # Panics
    /// Panics if `attrs` contains duplicates — a relation cannot have two
    /// columns with the same attribute.
    pub fn new(attrs: Vec<AttrId>) -> Self {
        for (i, a) in attrs.iter().enumerate() {
            assert!(!attrs[..i].contains(a), "duplicate attribute {a} in schema");
        }
        Schema { attrs }
    }

    /// The empty (nullary) schema.
    pub fn empty() -> Self {
        Schema { attrs: Vec::new() }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// True for the nullary schema.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The attributes in column order.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Column position of `attr`, if present.
    pub fn position(&self, attr: AttrId) -> Option<usize> {
        self.attrs.iter().position(|&a| a == attr)
    }

    /// True if `attr` is a column of this schema.
    pub fn contains(&self, attr: AttrId) -> bool {
        self.position(attr).is_some()
    }

    /// Attributes present in both schemas, in `self`'s column order.
    pub fn common(&self, other: &Schema) -> Vec<AttrId> {
        self.attrs
            .iter()
            .copied()
            .filter(|a| other.contains(*a))
            .collect()
    }

    /// Attributes of `self` absent from `other`, in column order.
    pub fn difference(&self, other: &Schema) -> Vec<AttrId> {
        self.attrs
            .iter()
            .copied()
            .filter(|a| !other.contains(*a))
            .collect()
    }

    /// Concatenation of two disjoint schemas.
    ///
    /// # Panics
    /// Panics if the schemas share an attribute (products in the paper are
    /// over disjoint schemas, Def. 1).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut attrs = self.attrs.clone();
        for &a in &other.attrs {
            assert!(!self.contains(a), "schemas overlap on {a}");
            attrs.push(a);
        }
        Schema { attrs }
    }

    /// Renders the schema with attribute names from `catalog`.
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> SchemaDisplay<'a> {
        SchemaDisplay {
            schema: self,
            catalog,
        }
    }
}

impl From<Vec<AttrId>> for Schema {
    fn from(attrs: Vec<AttrId>) -> Self {
        Schema::new(attrs)
    }
}

/// Helper for [`Schema::display`].
pub struct SchemaDisplay<'a> {
    schema: &'a Schema,
    catalog: &'a Catalog,
}

impl fmt::Display for SchemaDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, &a) in self.schema.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.catalog.name(a))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> (Catalog, Vec<AttrId>) {
        let mut c = Catalog::new();
        let ids = c.intern_all(["a", "b", "c"]);
        (c, ids)
    }

    #[test]
    fn position_and_contains() {
        let (_, ids) = abc();
        let s = Schema::new(ids.clone());
        assert_eq!(s.position(ids[1]), Some(1));
        assert!(s.contains(ids[2]));
        assert_eq!(s.arity(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicates_rejected() {
        let (_, ids) = abc();
        Schema::new(vec![ids[0], ids[0]]);
    }

    #[test]
    fn common_and_difference() {
        let (mut c, ids) = abc();
        let d = c.intern("d");
        let s1 = Schema::new(vec![ids[0], ids[1], ids[2]]);
        let s2 = Schema::new(vec![ids[1], d]);
        assert_eq!(s1.common(&s2), vec![ids[1]]);
        assert_eq!(s1.difference(&s2), vec![ids[0], ids[2]]);
    }

    #[test]
    fn concat_disjoint() {
        let (mut c, ids) = abc();
        let d = c.intern("d");
        let s1 = Schema::new(vec![ids[0]]);
        let s2 = Schema::new(vec![d]);
        assert_eq!(s1.concat(&s2).attrs(), &[ids[0], d]);
    }

    #[test]
    #[should_panic(expected = "schemas overlap")]
    fn concat_overlapping_panics() {
        let (_, ids) = abc();
        let s1 = Schema::new(vec![ids[0], ids[1]]);
        let s2 = Schema::new(vec![ids[1]]);
        let _ = s1.concat(&s2);
    }

    #[test]
    fn display_uses_names() {
        let (c, ids) = abc();
        let s = Schema::new(ids);
        assert_eq!(s.display(&c).to_string(), "(a, b, c)");
    }
}
