//! Criterion benches mirroring the paper's figures at laptop-friendly
//! scale (s = 1). The figure binaries (`fig4`…`fig8`) run the same
//! queries at configurable scales and print the paper-style series; these
//! benches give statistically robust per-query numbers for regression
//! tracking.

use criterion::{criterion_group, criterion_main, Criterion};
use fdb_bench::queries::flat_input_agg_queries;
use fdb_bench::{paper_queries, BenchSetup, QueryClass};
use fdb_relational::engine::PlanMode;
use fdb_relational::GroupStrategy;
use fdb_workload::orders::OrdersConfig;

fn env_at(scale: u32) -> fdb_bench::BenchEnv {
    env_at_threads(scale, 1)
}

fn env_at_threads(scale: u32, threads: usize) -> fdb_bench::BenchEnv {
    BenchSetup {
        config: OrdersConfig {
            scale,
            customers: 50,
            seed: 0xFDB,
        },
        materialise_flat: true,
        threads,
    }
    .build()
}

/// Figures 4/5: AGG queries on the materialised view.
fn agg_on_view(c: &mut Criterion) {
    let mut env = env_at(1);
    let attrs = env.attrs;
    let queries = paper_queries(&mut env.fdb.catalog, &attrs);
    env.rdb_sort.catalog = env.fdb.catalog.clone();
    env.rdb_hash.catalog = env.fdb.catalog.clone();
    let mut group = c.benchmark_group("fig5_agg_on_view");
    group.sample_size(10);
    for q in queries.iter().filter(|q| q.class == QueryClass::Agg) {
        group.bench_function(format!("{}_fdb_fo", q.name), |b| {
            b.iter(|| env.run_fdb_fo(&q.task))
        });
        group.bench_function(format!("{}_fdb_flat", q.name), |b| {
            b.iter(|| env.run_fdb_flat(&q.task))
        });
        group.bench_function(format!("{}_rdb_sort", q.name), |b| {
            b.iter(|| env.run_rdb(&q.task, GroupStrategy::Sort, PlanMode::Naive))
        });
        group.bench_function(format!("{}_rdb_hash", q.name), |b| {
            b.iter(|| env.run_rdb(&q.task, GroupStrategy::Hash, PlanMode::Naive))
        });
    }
    group.finish();
}

/// Figure 6: AGG queries from flat input, naive and eager baselines.
fn agg_on_flat_input(c: &mut Criterion) {
    let mut env = env_at(1);
    let attrs = env.attrs;
    let queries = flat_input_agg_queries(&mut env.fdb.catalog, &attrs);
    env.rdb_sort.catalog = env.fdb.catalog.clone();
    env.rdb_hash.catalog = env.fdb.catalog.clone();
    let mut group = c.benchmark_group("fig6_agg_flat_input");
    group.sample_size(10);
    for q in queries.iter().filter(|q| q.name == "Q2" || q.name == "Q4") {
        group.bench_function(format!("{}_fdb", q.name), |b| {
            b.iter(|| env.run_fdb_flat(&q.task))
        });
        group.bench_function(format!("{}_rdb_naive", q.name), |b| {
            b.iter(|| env.run_rdb(&q.task, GroupStrategy::Hash, PlanMode::Naive))
        });
        group.bench_function(format!("{}_rdb_man", q.name), |b| {
            b.iter(|| env.run_rdb(&q.task, GroupStrategy::Hash, PlanMode::Eager))
        });
    }
    group.finish();
}

/// Figure 7: AGG+ORD queries on the view.
fn agg_ord_on_view(c: &mut Criterion) {
    let mut env = env_at(1);
    let attrs = env.attrs;
    let queries = paper_queries(&mut env.fdb.catalog, &attrs);
    env.rdb_sort.catalog = env.fdb.catalog.clone();
    env.rdb_hash.catalog = env.fdb.catalog.clone();
    let mut group = c.benchmark_group("fig7_agg_ord");
    group.sample_size(10);
    for q in queries.iter().filter(|q| q.class == QueryClass::AggOrd) {
        group.bench_function(format!("{}_fdb", q.name), |b| {
            b.iter(|| env.run_fdb_flat(&q.task))
        });
        group.bench_function(format!("{}_rdb_hash", q.name), |b| {
            b.iter(|| env.run_rdb(&q.task, GroupStrategy::Hash, PlanMode::Naive))
        });
    }
    group.finish();
}

/// Thread-sweep variant of Figure 5: the AGG queries at 1/2/4 workers,
/// for tracking the parallel speedup (or its absence on small data).
fn agg_thread_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_agg_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let mut env = env_at_threads(1, threads);
        let attrs = env.attrs;
        let queries = paper_queries(&mut env.fdb.catalog, &attrs);
        env.rdb_sort.catalog = env.fdb.catalog.clone();
        for q in queries.iter().filter(|q| q.name == "Q2" || q.name == "Q5") {
            group.bench_function(format!("{}_fdb_t{}", q.name, threads), |b| {
                b.iter(|| env.run_fdb_flat(&q.task))
            });
            group.bench_function(format!("{}_rdb_sort_t{}", q.name, threads), |b| {
                b.iter(|| env.run_rdb(&q.task, GroupStrategy::Sort, PlanMode::Naive))
            });
        }
    }
    group.finish();
}

/// Figure 8: ORD queries with and without LIMIT 10.
fn ord_queries(c: &mut Criterion) {
    let mut env = env_at(1);
    let attrs = env.attrs;
    let queries = paper_queries(&mut env.fdb.catalog, &attrs);
    env.rdb_sort.catalog = env.fdb.catalog.clone();
    env.rdb_hash.catalog = env.fdb.catalog.clone();
    let mut group = c.benchmark_group("fig8_ord");
    group.sample_size(10);
    for q in queries.iter().filter(|q| q.class == QueryClass::Ord) {
        for (suffix, limit) in [("", None), ("_lim10", Some(10usize))] {
            let mut task = q.task.clone();
            task.limit = limit;
            group.bench_function(format!("{}{}_fdb", q.name, suffix), |b| {
                b.iter(|| env.run_fdb_flat(&task))
            });
            let keys = task.order_by.clone();
            let input = q.input;
            group.bench_function(format!("{}{}_rdb", q.name, suffix), |b| {
                b.iter(|| env.run_rdb_ord(input, &keys, limit))
            });
        }
    }
    group.finish();
}

criterion_group!(
    figures,
    agg_on_view,
    agg_on_flat_input,
    agg_ord_on_view,
    agg_thread_sweep,
    ord_queries
);
criterion_main!(figures);
