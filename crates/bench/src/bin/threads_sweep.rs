//! Threads sweep — the multi-core campaign (scale fixed, worker count
//! varied) plus the skewed-workload scheduler A/B.
//!
//! Runs the AGG queries Q1–Q5 through both FDB flavours at `--threads`
//! 1, 2, 4 and 0 (= the machine), tagging each configuration's rows
//! (`t1`/`t2`/`t4`/`t0`) so they gate independently under `perfgate`.
//! `BENCH_threads_s1.json` in the repository root is the recorded
//! `--scale 1` baseline.
//!
//! The `SKEW` rows measure the morsel-driven work-stealing scheduler
//! against the legacy static carve (one contiguous chunk per worker, no
//! stealing) on a skewed per-group aggregation: one group holds ~90% of
//! the entries, the rest spread over many small groups — the shape that
//! serialises a static partitioning behind the giant group's worker.
//! The `static` row also runs the pre-kernel inner loop (per-value
//! clone + `Number` dispatch) where the `morsel` row runs the slice
//! kernel, so the pair brackets this change end to end. Speedups only
//! materialise with real cores; on a single-core container both rows
//! cost the same (see EXPERIMENTS.md).
//!
//! `cargo run --release -p fdb-bench --bin threads_sweep -- --scale 1 \
//!    --json BENCH_threads_s1.json`

use fdb_bench::{median_secs, paper_queries, Args, BenchSetup, QueryClass};
use fdb_relational::{Number, Value};
use fdb_workload::orders::OrdersConfig;

/// Skewed grouping: one giant group with ~90% of the values, the rest
/// split over `small` equal groups. Returns the value buffer and the
/// per-group `(start, len)` ranges, giant first.
fn skewed_groups(total: usize, small: usize) -> (Vec<Value>, Vec<(usize, usize)>) {
    let giant = total * 9 / 10;
    let values: Vec<Value> = (0..total as i64).map(Value::Int).collect();
    let mut ranges = vec![(0usize, giant)];
    let rest = total - giant;
    let per = rest.div_ceil(small).max(1);
    let mut at = giant;
    while at < total {
        let len = per.min(total - at);
        ranges.push((at, len));
        at += len;
    }
    (values, ranges)
}

/// The pre-kernel inner loop: per-value clone, `as_number`, `Number`
/// dispatch — what `fdb_core::agg` folded before the slice kernels.
fn generic_sum(vals: &[Value]) -> Number {
    let mut acc = Number::ZERO;
    for v in vals {
        let v = v.clone();
        acc = acc.add(v.as_number().expect("int values"));
    }
    acc
}

/// The slice-kernel inner loop: branch-predictable scan, wrapping adds.
fn kernel_sum(vals: &[Value]) -> Number {
    let mut acc = 0i64;
    for v in vals {
        if let Value::Int(x) = v {
            acc = acc.wrapping_add(*x);
        }
    }
    Number::Int(acc)
}

fn main() {
    let args = Args::parse(1, 1);
    let scale = args.scale;
    let mut emit = args.emitter();
    println!("# Threads sweep: AGG queries at scale {scale}, workers 1/2/4/machine");
    for threads in [1usize, 2, 4, 0] {
        let tag = format!("t{threads}");
        let mut env = BenchSetup {
            config: OrdersConfig {
                scale,
                customers: args.customers,
                seed: 0xFDB,
            },
            materialise_flat: true,
            threads,
        }
        .build();
        println!(
            "# {tag}: resolved {} worker thread(s), flat view {} tuples",
            env.threads, env.flat_tuples
        );
        let attrs = env.attrs;
        let queries = paper_queries(&mut env.fdb.catalog, &attrs);
        for q in queries.iter().filter(|q| q.class == QueryClass::Agg) {
            let ((st, exec), t) = median_secs(args.repeats, || env.run_fdb_fo_report(&q.task));
            emit.row_tagged(
                "T",
                scale,
                q.name,
                "FDB f/o",
                &tag,
                t,
                &format!(
                    "workers={} singletons={} ibytes={}",
                    env.threads, st.singletons, exec.intermediate_bytes
                ),
            );
            let (n, t) = median_secs(args.repeats, || env.run_fdb_flat(&q.task));
            emit.row_tagged(
                "T",
                scale,
                q.name,
                "FDB",
                &tag,
                t,
                &format!("workers={} rows={n}", env.threads),
            );
        }
    }

    // Skewed-workload scheduler A/B at 4 requested workers: one group
    // holds 90% of the entries. `static` = legacy one-chunk-per-worker
    // carve + pre-kernel fold; `morsel` = work-stealing morsels + slice
    // kernel.
    let total = 200_000 * scale as usize;
    let (values, ranges) = skewed_groups(total, 63);
    let groups = ranges.len();
    println!("# SKEW: {total} entries, {groups} groups, giant group = 90%");
    let threads = 4;
    let (sums_static, t_static) = median_secs(args.repeats, || {
        fdb_exec::parallel_map_grained(threads, 1, ranges.clone(), |(at, len)| {
            generic_sum(&values[at..at + len])
        })
    });
    let (sums_morsel, t_morsel) = median_secs(args.repeats, || {
        fdb_exec::parallel_map(threads, ranges.clone(), |(at, len)| {
            kernel_sum(&values[at..at + len])
        })
    });
    assert_eq!(sums_static, sums_morsel, "scheduler changed the results");
    emit.row_tagged(
        "T",
        scale,
        "SKEW",
        "FDB",
        "static-t4",
        t_static,
        &format!("groups={groups} entries={total}"),
    );
    emit.row_tagged(
        "T",
        scale,
        "SKEW",
        "FDB",
        "morsel-t4",
        t_morsel,
        &format!(
            "groups={groups} entries={total} speedup_vs_static={:.2}",
            t_static / t_morsel.max(1e-9)
        ),
    );
    emit.finish();
}
