//! The product operator: combines two factorisations into one forest.
//!
//! "Products are the cheapest operators to execute on factorisations: a
//! product of n relations can be represented as a factorisation that is a
//! product relational expression whose children are the n relations" (§5.1)
//! — structurally a forest union. With arena storage this is a single
//! table append of the right arena onto the left (the left moves for
//! free; only the right side's ids and node tags are re-based).

use crate::frep::{FRep, UnionId};

/// Cross product of two factorised relations over disjoint schemas.
///
/// # Panics
/// Debug-asserts schema disjointness; production misuse surfaces as a path
/// constraint violation at the next check.
pub fn product(left: FRep, right: FRep) -> FRep {
    let (mut tree, mut arena, mut roots) = left.into_arena_parts();
    let (rtree, rarena, rroots) = right.into_arena_parts();
    debug_assert!(
        rtree
            .all_attrs()
            .iter()
            .all(|a| !tree.all_attrs().contains(a)),
        "product requires disjoint schemas"
    );
    let offset = tree.extend_forest(&rtree);
    let union_off = arena.append(rarena, offset);
    roots.extend(rroots.iter().map(|r| UnionId(r.0 + union_off)));
    FRep::from_arena(tree, arena, roots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftree::FTree;
    use fdb_relational::{Catalog, Relation, Schema, Value};

    fn rep_of(c: &mut Catalog, name: &str, vals: &[i64]) -> FRep {
        let a = c.intern(name);
        let rel = Relation::from_rows(
            Schema::new(vec![a]),
            vals.iter().map(|&v| vec![Value::Int(v)]),
        );
        FRep::from_relation(&rel, FTree::path(&[a])).unwrap()
    }

    #[test]
    fn product_concatenates_forests() {
        let mut c = Catalog::new();
        let l = rep_of(&mut c, "a", &[1, 2]);
        let r = rep_of(&mut c, "b", &[10, 20, 30]);
        let p = product(l, r);
        p.check_invariants().unwrap();
        assert_eq!(p.ftree().roots().len(), 2);
        assert_eq!(p.tuple_count(), 6);
        assert_eq!(p.singleton_count(), 5);
    }

    #[test]
    fn product_with_empty_is_empty() {
        let mut c = Catalog::new();
        let l = rep_of(&mut c, "a", &[1, 2]);
        let r = rep_of(&mut c, "b", &[]);
        let p = product(l, r);
        assert!(p.is_empty());
        assert_eq!(p.tuple_count(), 0);
    }

    #[test]
    fn node_ids_remapped_consistently() {
        let mut c = Catalog::new();
        let l = rep_of(&mut c, "a", &[1]);
        let r = rep_of(&mut c, "b", &[2]);
        let p = product(l, r);
        // Every root union's node id must match the f-tree position.
        for (u, &root) in p.root_unions().zip(p.ftree().roots()) {
            assert_eq!(u.node(), root);
        }
    }
}
