//! Concurrent readers over one `Arc`-shared snapshot.
//!
//! The serving layer's correctness contract: N threads enumerating and
//! aggregating the same immutable `FRep` arenas (through cheap engine
//! clones or [`fdb::Session`] snapshots) produce results **byte
//! identical** to the serial run — same rows, same order — and
//! registrations after a snapshot is cut stay invisible to it.

mod common;

use fdb::core::engine::FdbEngine;
use fdb::workload::orders::{generate, OrdersConfig};
use fdb::{Catalog, Db, Relation, Value};
use std::sync::Arc;

/// The byte-identity projection: tuples in enumeration order. Output
/// attribute *ids* are interned per run, so they legitimately differ
/// across engine clones; values and their order must not.
fn tuples(r: &Relation) -> Vec<Vec<Value>> {
    r.rows().map(|row| row.to_vec()).collect()
}

const N_THREADS: usize = 16;

fn orders_engine() -> FdbEngine {
    let mut catalog = Catalog::new();
    let ds = generate(
        &mut catalog,
        &OrdersConfig {
            scale: 1,
            customers: 20,
            seed: 11,
        },
    );
    let mut engine = FdbEngine::new(catalog);
    engine.register_view("R1", ds.factorised_view());
    engine.register_relation("Items", ds.items);
    engine
}

const QUERIES: [&str; 3] = [
    "SELECT customer, SUM(price) AS revenue FROM R1 \
     GROUP BY customer ORDER BY revenue DESC, customer LIMIT 5",
    "SELECT COUNT(*) AS n FROM R1",
    "SELECT item, price FROM Items ORDER BY price DESC, item LIMIT 7",
];

#[test]
fn engine_clones_share_arenas_and_enumerate_byte_identically() {
    let engine = orders_engine();
    // Serial reference on a clone of its own.
    let serial: Vec<Relation> = QUERIES
        .iter()
        .map(|sql| engine.clone().run_sql(sql).unwrap())
        .collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N_THREADS)
            .map(|t| {
                let mut mine = engine.clone();
                // The clone shares the arena, it does not copy it.
                assert!(Arc::ptr_eq(
                    &engine.view_arc("R1").unwrap(),
                    &mine.view_arc("R1").unwrap()
                ));
                scope.spawn(move || {
                    // Each thread walks the queries from its own offset
                    // so distinct queries overlap in time.
                    (0..QUERIES.len())
                        .map(|i| {
                            let q = (t + i) % QUERIES.len();
                            (q, mine.run_sql(QUERIES[q]).unwrap())
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for (t, h) in handles.into_iter().enumerate() {
            for (q, rel) in h.join().unwrap() {
                // Byte-identical: same rows in the same order, not just
                // the same set.
                assert_eq!(tuples(&rel), tuples(&serial[q]), "thread {t}, query {q}");
            }
        }
    });
}

#[test]
fn sixteen_sessions_on_one_db_agree_with_serial() {
    let db = Db::from_engine(orders_engine());
    let serial: Vec<Relation> = QUERIES
        .iter()
        .map(|sql| db.session().query(sql).unwrap().rows)
        .collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N_THREADS)
            .map(|t| {
                let mut session = db.session();
                scope.spawn(move || {
                    (0..QUERIES.len())
                        .map(|i| {
                            let q = (t + i) % QUERIES.len();
                            (q, session.query(QUERIES[q]).unwrap().rows)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (q, rows) in h.join().unwrap() {
                assert_eq!(tuples(&rows), tuples(&serial[q]));
            }
        }
    });
}

#[test]
fn sessions_are_snapshots_registrations_stay_invisible() {
    let db = Db::from_engine(orders_engine());
    let mut old = db.session();
    let epoch_before = db.epoch();

    // Register a second view after the snapshot was cut.
    let mut catalog = Catalog::new();
    let ds = generate(
        &mut catalog,
        &OrdersConfig {
            scale: 1,
            customers: 5,
            seed: 99,
        },
    );
    // Serialise/reload so the view lands in the Db's own catalog.
    let mut producer = FdbEngine::new(catalog);
    producer.register_view("Late", ds.factorised_view());
    let mut bytes = Vec::new();
    producer.save_view("Late", &mut bytes).unwrap();
    db.load_view("Late", bytes.as_slice()).unwrap();

    assert!(db.epoch() > epoch_before, "registration bumps the epoch");
    assert_ne!(old.epoch(), db.epoch(), "old session is now stale");

    // The old snapshot cannot see the late view; a fresh one can.
    assert!(old.query("SELECT COUNT(*) AS n FROM Late").is_err());
    let mut fresh = db.session();
    assert!(fresh.query("SELECT COUNT(*) AS n FROM Late").is_ok());
    // And the old snapshot still answers its own queries.
    assert!(old.query("SELECT COUNT(*) AS n FROM R1").is_ok());
}

#[test]
fn outcome_carries_explain_and_stats() {
    let db = Db::from_engine(orders_engine());
    let mut session = db.session();
    let out = session.query(QUERIES[0]).unwrap();
    assert_eq!(out.columns, vec!["customer", "revenue"]);
    assert!(out.explain.contains("f-plan"), "{}", out.explain);
    assert!(out.order.rows_enumerated >= out.rows.len());
    assert_eq!(out.len(), out.rows.len());
    assert!(!out.is_empty());
}
