//! Constant selections `A θ c` on factorisations.
//!
//! A constant selection filters the entries of the attribute's unions in
//! one traversal of the relevant fragment (§5.1); entries whose subtrees
//! become empty are pruned on the way back up. The surviving entries'
//! subtrees are copied verbatim into the output arena.

use crate::error::{FdbError, Result};
use crate::frep::{value_for_attr, Arena, FRep, UnionId};
use crate::ops::rewrite_at;
use fdb_relational::{AttrId, CmpOp, Value};

/// Filters the factorised relation to tuples with `attr θ value`.
///
/// Works on atomic attributes and on aggregate outputs alike — the latter
/// is how `HAVING` clauses execute after aggregation (§2).
pub fn select_const(rep: FRep, attr: AttrId, op: CmpOp, value: &Value) -> Result<FRep> {
    let node = rep
        .ftree()
        .node_of_attr(attr)
        .ok_or_else(|| FdbError::Unresolved(format!("attribute {attr} not in f-tree")))?;
    let (tree, arena, roots) = rep.into_arena_parts();
    let label = tree.node(node).label.clone();
    let mut dst = Arena::default();
    let roots = rewrite_at(&tree, &arena, &roots, node, &mut dst, &mut |u, dst| {
        let mut specs = Vec::with_capacity(u.len());
        let mut kid_ids: Vec<UnionId> = Vec::new();
        for e in u.entries() {
            let v = value_for_attr(&label, e.value(), attr)
                .expect("node exposes the selected attribute");
            if !op.eval(v.cmp(value)) {
                continue;
            }
            kid_ids.clear();
            for c in e.child_ids() {
                kid_ids.push(dst.copy_union_from(&arena, c));
            }
            specs.push(dst.entry(u.node(), e.value().clone(), &kid_ids));
        }
        Ok(Some(dst.push_union(u.node(), &specs)))
    })?;
    let out = FRep::from_arena(tree, dst, roots);
    debug_assert!(out.check_invariants().is_ok());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftree::FTree;
    use fdb_relational::{Catalog, Relation, Schema};

    fn items() -> (Catalog, FRep) {
        let mut c = Catalog::new();
        let item = c.intern("item");
        let price = c.intern("price");
        let rel = Relation::from_rows(
            Schema::new(vec![item, price]),
            [("base", 6), ("ham", 1), ("mushrooms", 1), ("pineapple", 2)]
                .into_iter()
                .map(|(i, p)| vec![Value::str(i), Value::Int(p)]),
        );
        let rep = FRep::from_relation(&rel, FTree::path(&[item, price])).unwrap();
        (c, rep)
    }

    #[test]
    fn select_on_root_attribute() {
        let (c, rep) = items();
        let item = c.lookup("item").unwrap();
        let out = select_const(rep, item, CmpOp::Eq, &Value::str("ham")).unwrap();
        assert_eq!(out.tuple_count(), 1);
        let flat = out.flatten();
        assert_eq!(flat.row(0)[1], Value::Int(1));
    }

    #[test]
    fn select_on_leaf_prunes_upwards() {
        let (c, rep) = items();
        let price = c.lookup("price").unwrap();
        // price > 10 matches nothing: all item entries must be pruned.
        let out = select_const(rep, price, CmpOp::Gt, &Value::Int(10)).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.singleton_count(), 0);
    }

    #[test]
    fn select_keeps_matching_branches_only() {
        let (c, rep) = items();
        let price = c.lookup("price").unwrap();
        let out = select_const(rep, price, CmpOp::Le, &Value::Int(2)).unwrap();
        out.check_invariants().unwrap();
        assert_eq!(out.tuple_count(), 3);
        // "base" (price 6) disappeared from the item union.
        let names: Vec<String> = out
            .root(0)
            .entries()
            .map(|e| e.value().as_str().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["ham", "mushrooms", "pineapple"]);
    }

    #[test]
    fn select_ne_and_ranges_compose() {
        let (c, rep) = items();
        let price = c.lookup("price").unwrap();
        let step1 = select_const(rep, price, CmpOp::Ne, &Value::Int(1)).unwrap();
        let step2 = select_const(step1, price, CmpOp::Lt, &Value::Int(6)).unwrap();
        assert_eq!(step2.tuple_count(), 1);
        assert_eq!(*step2.root(0).entry(0).value(), Value::str("pineapple"));
    }

    #[test]
    fn unknown_attribute_errors() {
        let (_, rep) = items();
        let err = select_const(rep, AttrId(99), CmpOp::Eq, &Value::Int(0));
        assert!(matches!(err, Err(FdbError::Unresolved(_))));
    }
}
