//! Plan explorer: compare the greedy heuristic against the exhaustive
//! Dijkstra optimiser on the pizzeria queries, printing the f-plans
//! (with the staged-pipeline segmentation each plan executes as), the
//! intermediate f-trees and the size-bound costs (§5).
//!
//! Run with: `cargo run --release --example plan_explorer`

use fdb::core::ftree::AggOp;
use fdb::core::optim::{exhaustive, greedy, tree_cost, ExhaustiveConfig, QuerySpec, Stats};
use fdb::core::plan::{apply_to_tree, FPlan};
use fdb::core::FTree;
use fdb::workload::pizzeria::{factorised_r, pizzeria};
use fdb::Catalog;

fn plan_cost(tree0: &FTree, plan: &FPlan, stats: &Stats) -> f64 {
    let mut tree = tree0.clone();
    let mut total = 0.0;
    for op in &plan.ops {
        apply_to_tree(&mut tree, op).expect("plan simulates");
        total += tree_cost(&tree, stats);
    }
    total
}

fn main() {
    let mut catalog = Catalog::new();
    let db = pizzeria(&mut catalog);
    let a = db.attrs;
    let rep = factorised_r(&db);
    let mut stats = Stats::new();
    stats.add_relation([a.customer, a.date, a.pizza], db.orders.len());
    stats.add_relation([a.pizza, a.item], db.pizzas.len());
    stats.add_relation([a.item, a.price], db.items.len());

    println!("input f-tree T1:\n{}", rep.ftree().display(&catalog));
    println!(
        "input size bound: {:.1} (actual {} singletons)\n",
        tree_cost(rep.ftree(), &stats),
        rep.singleton_count()
    );

    let scenarios: Vec<(&str, Vec<fdb::relational::AttrId>)> = vec![
        ("revenue per customer", vec![a.customer]),
        ("revenue per (customer, pizza)", vec![a.customer, a.pizza]),
        ("total revenue", vec![]),
    ];
    for (name, group_by) in scenarios {
        println!("==== {name} ====");
        let out_g = catalog.fresh("revenue");
        let mut spec = QuerySpec {
            group_by: group_by.clone(),
            final_funcs: vec![AggOp::Sum(a.price)],
            final_outputs: vec![out_g],
            consolidate: true,
            ..Default::default()
        };
        let gplan = greedy(rep.ftree(), &spec, &stats, &mut catalog).expect("greedy plan");
        println!(
            "greedy f-plan (operators grouped by pipeline stage):\n{}",
            fdb::core::pipeline::display_staged(&gplan, &catalog)
        );
        println!(
            "greedy plan cost: {:.1}",
            plan_cost(rep.ftree(), &gplan, &stats)
        );

        spec.final_outputs = vec![catalog.fresh("revenue")];
        match exhaustive(
            rep.ftree(),
            &spec,
            &stats,
            &mut catalog,
            ExhaustiveConfig::default(),
        ) {
            Ok(xplan) => {
                println!(
                    "exhaustive plan cost: {:.1} ({} ops vs greedy's {})",
                    plan_cost(rep.ftree(), &xplan, &stats),
                    xplan.len(),
                    gplan.len()
                );
            }
            Err(e) => println!("exhaustive search gave up: {e}"),
        }

        // Execute the greedy plan and show the result.
        let result = gplan.execute(rep.clone()).expect("plan executes");
        println!("result f-tree:\n{}", result.ftree().display(&catalog));
        println!("result:\n{}\n", result.display(&catalog));
    }
}
