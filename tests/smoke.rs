//! Workspace smoke test: the `fdb` facade re-exports (`FRep`, `FTree`,
//! `FdbEngine`, `parse`, `Catalog`, …) must compose end-to-end without
//! reaching into the underlying crates by name.

use fdb::{parse, Catalog, FRep, FTree, FdbEngine, Relation, Schema, Value};

#[test]
fn facade_reexports_compose_end_to_end() {
    let mut catalog = Catalog::new();
    let item = catalog.intern("item");
    let price = catalog.intern("price");
    let items = Relation::from_rows(
        Schema::new(vec![item, price]),
        [("base", 6), ("ham", 1), ("salami", 4)]
            .into_iter()
            .map(|(i, p)| vec![Value::str(i), Value::Int(p)]),
    );

    // Factorisation core: factorise over a path f-tree and round-trip.
    let rep = FRep::from_relation(&items, FTree::path(&[item, price])).unwrap();
    assert!(rep.check_invariants().is_ok());
    assert_eq!(rep.tuple_count(), items.len());
    assert_eq!(rep.flatten().canonical(), items.clone().canonical());

    // Front-end: parse resolves against the engine's registered schemas.
    let mut engine = FdbEngine::new(catalog);
    engine.register_relation("Items", items);
    let schemas = engine.schemas();
    let query = parse(
        "SELECT item, SUM(price) AS total FROM Items GROUP BY item ORDER BY total DESC",
        &mut engine.catalog,
        &schemas,
    )
    .unwrap();
    assert!(query.is_aggregate());

    // Engine: SQL in, relation out, through the factorised pipeline.
    let out = engine
        .run_sql("SELECT SUM(price) AS total FROM Items")
        .unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out.row(0)[0], Value::Int(11));
}

#[test]
fn facade_module_reexports_are_reachable() {
    // The module-level re-exports carry the deeper APIs.
    let mut catalog = fdb::Catalog::new();
    let x = catalog.intern("x");
    let tree = fdb::core::FTree::path(&[x]);
    assert_eq!(tree.roots().len(), 1);
    let pizzeria = fdb::workload::pizzeria::pizzeria(&mut catalog);
    assert!(!pizzeria.orders.is_empty());
    assert!(fdb::relational::Value::Int(1) < fdb::relational::Value::Int(2));
}
