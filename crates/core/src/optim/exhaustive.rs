//! Exhaustive f-plan search: Dijkstra over the graph of f-trees (§5.1).
//!
//! "We can represent the space of all f-plans as a graph whose nodes are
//! f-trees and whose edges are operators between them. […] we can utilise
//! Dijkstra's algorithm to find the minimum-cost f-plan" — with
//! Proposition 3 characterising the outgoing edges (permissible
//! operators): applicable selections, permissible aggregation operators,
//! and any swap. Edge cost is the size bound of the operator's output tree
//! (the paper's metric), so the path cost estimates total intermediate
//! size.
//!
//! The space is exponential in the query size; [`ExhaustiveConfig`] bounds
//! the number of explored states and the search degrades to an error the
//! caller can answer with the greedy heuristic.

use crate::agg::partial_funcs;
use crate::error::{FdbError, Result};
use crate::ftree::{FTree, NodeLabel};
use crate::optim::cost::{tree_cost, Stats};
use crate::optim::greedy::{
    applicable_selection, best_aggregate, finish, group_violation, order_violation, QuerySpec,
};
use crate::plan::{apply_to_tree, FOp, FPlan};
use fdb_relational::{AttrId, Catalog};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Search budget.
#[derive(Clone, Copy, Debug)]
pub struct ExhaustiveConfig {
    /// Maximum number of popped states before giving up.
    pub max_states: usize,
}

impl Default for ExhaustiveConfig {
    fn default() -> Self {
        ExhaustiveConfig { max_states: 20_000 }
    }
}

struct State {
    cost: f64,
    seq: usize,
    tree: FTree,
    pending: Vec<(AttrId, AttrId)>,
    plan: FPlan,
}

impl PartialEq for State {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.seq == other.seq
    }
}
impl Eq for State {}
impl PartialOrd for State {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for State {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost (BinaryHeap is a max-heap): reverse.
        other
            .cost
            .total_cmp(&self.cost)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Finds a minimum-cost f-plan under the size-bound metric.
pub fn exhaustive(
    tree0: &FTree,
    spec: &QuerySpec,
    stats: &Stats,
    catalog: &mut Catalog,
    cfg: ExhaustiveConfig,
) -> Result<FPlan> {
    // Constant selections are applied up front, outside the search (§5.1:
    // they are evaluated in one traversal of the product).
    let mut base_tree = tree0.clone();
    let mut base_plan = FPlan::new();
    for (attr, op, value) in &spec.const_preds {
        let op = FOp::SelectConst {
            attr: *attr,
            op: *op,
            value: value.clone(),
        };
        apply_to_tree(&mut base_tree, &op)?;
        base_plan.push(op);
    }

    let mut heap: BinaryHeap<State> = BinaryHeap::new();
    let mut visited: HashMap<String, f64> = HashMap::new();
    let mut seq = 0usize;
    heap.push(State {
        cost: 0.0,
        seq,
        tree: base_tree,
        pending: spec.selections.clone(),
        plan: base_plan,
    });
    let mut popped = 0usize;
    while let Some(state) = heap.pop() {
        popped += 1;
        if popped > cfg.max_states {
            return Err(FdbError::PlanningFailed(format!(
                "exhaustive search exceeded {} states",
                cfg.max_states
            )));
        }
        let key = state_key(&state);
        match visited.get(&key) {
            Some(&c) if c <= state.cost => continue,
            _ => {
                visited.insert(key, state.cost);
            }
        }
        if is_goal(&state.tree, &state.pending, spec) {
            let mut tree = state.tree;
            let mut plan = state.plan;
            finish(&mut tree, &mut plan, spec)?;
            return Ok(plan);
        }
        // --- Successors (permissible operators, Prop. 3) ---
        let mut push = |tree: FTree,
                        pending: Vec<(AttrId, AttrId)>,
                        plan: FPlan,
                        base: f64,
                        heap: &mut BinaryHeap<State>| {
            seq += 1;
            let cost = base + tree_cost(&tree, stats);
            heap.push(State {
                cost,
                seq,
                tree,
                pending,
                plan,
            });
        };
        // Applicable selections (each pending one that fits structurally).
        for i in 0..state.pending.len() {
            let one = [state.pending[i]];
            if let Some((_, op)) = applicable_selection(&state.tree, &one) {
                let mut tree = state.tree.clone();
                if apply_to_tree(&mut tree, &op).is_err() {
                    continue;
                }
                let mut pending = state.pending.clone();
                pending.remove(i);
                pending.retain(|&(x, y)| tree.node_of_attr(x) != tree.node_of_attr(y));
                let mut plan = state.plan.clone();
                plan.push(op);
                push(tree, pending, plan, state.cost, &mut heap);
            }
        }
        // Permissible aggregation operators: the maximal target set per
        // position (smaller subsets are dominated by Prop. 2 composition).
        if spec.is_aggregate() {
            if let Some((parent, targets)) = best_aggregate(&state.tree, spec, &state.pending) {
                let funcs = partial_funcs(&state.tree, &targets, &spec.final_funcs);
                let outputs: Vec<AttrId> = funcs
                    .iter()
                    .map(|f| catalog.fresh(&format!("partial_{}", f.display(catalog))))
                    .collect();
                let op = FOp::Aggregate {
                    parent,
                    targets,
                    funcs,
                    outputs,
                };
                let mut tree = state.tree.clone();
                if apply_to_tree(&mut tree, &op).is_ok() {
                    let mut plan = state.plan.clone();
                    plan.push(op);
                    push(tree, state.pending.clone(), plan, state.cost, &mut heap);
                }
            }
        }
        // Every swap.
        for n in state.tree.live_nodes() {
            if let Some(p) = state.tree.node(n).parent {
                let op = FOp::Swap {
                    parent: p,
                    child: n,
                };
                let mut tree = state.tree.clone();
                if apply_to_tree(&mut tree, &op).is_ok() {
                    let mut plan = state.plan.clone();
                    plan.push(op);
                    push(tree, state.pending.clone(), plan, state.cost, &mut heap);
                }
            }
        }
    }
    Err(FdbError::PlanningFailed(
        "exhaustive search exhausted the state space without a goal".into(),
    ))
}

fn state_key(state: &State) -> String {
    let mut key = state.tree.search_key();
    let mut pend: Vec<(u32, u32)> = state
        .pending
        .iter()
        .map(|&(a, b)| (a.0.min(b.0), a.0.max(b.0)))
        .collect();
    pend.sort_unstable();
    key.push_str(&format!("§{pend:?}"));
    key
}

/// Goal test per §5.1: selections done; for aggregate queries every atomic
/// attribute outside `G` aggregated away and group support established;
/// order support for keys already present (final-output keys are handled
/// by the shared finish phase).
fn is_goal(tree: &FTree, pending: &[(AttrId, AttrId)], spec: &QuerySpec) -> bool {
    if !pending.is_empty() {
        return false;
    }
    if spec.is_aggregate() {
        for n in tree.live_nodes() {
            if let NodeLabel::Atomic(attrs) = &tree.node(n).label {
                if attrs.iter().any(|a| !spec.group_by.contains(a)) {
                    return false;
                }
            }
        }
        if group_violation(tree, &spec.group_by).is_some() {
            return false;
        }
    }
    order_violation(tree, &spec.order_by).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frep::FRep;
    use crate::ftree::AggOp;
    use crate::optim::greedy::greedy;
    use fdb_relational::{Relation, Schema, Value};

    fn t1_rep() -> (Catalog, FRep, Stats) {
        let mut c = Catalog::new();
        let pizza = c.intern("pizza");
        let date = c.intern("date");
        let customer = c.intern("customer");
        let item = c.intern("item");
        let price = c.intern("price");
        let rows: Vec<(&str, i64, &str, &str, i64)> = vec![
            ("Capricciosa", 1, "Mario", "base", 6),
            ("Capricciosa", 1, "Mario", "ham", 1),
            ("Capricciosa", 1, "Mario", "mushrooms", 1),
            ("Capricciosa", 5, "Mario", "base", 6),
            ("Capricciosa", 5, "Mario", "ham", 1),
            ("Capricciosa", 5, "Mario", "mushrooms", 1),
            ("Hawaii", 5, "Lucia", "base", 6),
            ("Hawaii", 5, "Lucia", "ham", 1),
            ("Hawaii", 5, "Lucia", "pineapple", 2),
            ("Hawaii", 5, "Pietro", "base", 6),
            ("Hawaii", 5, "Pietro", "ham", 1),
            ("Hawaii", 5, "Pietro", "pineapple", 2),
            ("Margherita", 2, "Mario", "base", 6),
        ];
        let rel = Relation::from_rows(
            Schema::new(vec![pizza, date, customer, item, price]),
            rows.into_iter().map(|(p, d, cu, i, pr)| {
                vec![
                    Value::str(p),
                    Value::Int(d),
                    Value::str(cu),
                    Value::str(i),
                    Value::Int(pr),
                ]
            }),
        );
        let mut t = FTree::new();
        let n_pizza = t.add_node(NodeLabel::Atomic(vec![pizza]), None);
        let n_date = t.add_node(NodeLabel::Atomic(vec![date]), Some(n_pizza));
        t.add_node(NodeLabel::Atomic(vec![customer]), Some(n_date));
        let n_item = t.add_node(NodeLabel::Atomic(vec![item]), Some(n_pizza));
        t.add_node(NodeLabel::Atomic(vec![price]), Some(n_item));
        t.add_dep([customer, date, pizza]);
        t.add_dep([pizza, item]);
        t.add_dep([item, price]);
        let rep = FRep::from_relation(&rel, t).unwrap();
        let mut stats = Stats::new();
        stats.add_relation([customer, date, pizza], 5);
        stats.add_relation([pizza, item], 7);
        stats.add_relation([item, price], 4);
        (c, rep, stats)
    }

    #[test]
    fn exhaustive_matches_greedy_results() {
        let (mut c, rep, stats) = t1_rep();
        let price = c.lookup("price").unwrap();
        let customer = c.lookup("customer").unwrap();
        let r1 = c.intern("rev_g");
        let r2 = c.intern("rev_x");
        let mut spec = QuerySpec {
            group_by: vec![customer],
            final_funcs: vec![AggOp::Sum(price)],
            final_outputs: vec![r1],
            consolidate: true,
            ..Default::default()
        };
        let gplan = greedy(rep.ftree(), &spec, &stats, &mut c).unwrap();
        spec.final_outputs = vec![r2];
        let xplan = exhaustive(
            rep.ftree(),
            &spec,
            &stats,
            &mut c,
            ExhaustiveConfig::default(),
        )
        .unwrap();
        let gout = gplan.execute(rep.clone()).unwrap().flatten();
        let xout = xplan.execute(rep).unwrap().flatten();
        let g: Vec<(String, i64)> = gout
            .rows()
            .map(|r| (r[0].as_str().unwrap().to_string(), r[1].as_int().unwrap()))
            .collect();
        let x: Vec<(String, i64)> = xout
            .rows()
            .map(|r| (r[0].as_str().unwrap().to_string(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(g, x);
    }

    #[test]
    fn exhaustive_cost_not_worse_than_greedy() {
        // Compare total plan cost (sum of intermediate tree bounds) —
        // Dijkstra must never exceed the heuristic.
        let (mut c, rep, stats) = t1_rep();
        let price = c.lookup("price").unwrap();
        let customer = c.lookup("customer").unwrap();
        let spec = QuerySpec {
            group_by: vec![customer],
            final_funcs: vec![AggOp::Sum(price)],
            final_outputs: vec![c.intern("rev_cost")],
            consolidate: false,
            ..Default::default()
        };
        let gplan = greedy(rep.ftree(), &spec, &stats, &mut c).unwrap();
        let xplan = exhaustive(
            rep.ftree(),
            &spec,
            &stats,
            &mut c,
            ExhaustiveConfig::default(),
        )
        .unwrap();
        let cost_of = |plan: &FPlan| -> f64 {
            let mut tree = rep.ftree().clone();
            let mut total = 0.0;
            for op in &plan.ops {
                apply_to_tree(&mut tree, op).unwrap();
                total += tree_cost(&tree, &stats);
            }
            total
        };
        assert!(cost_of(&xplan) <= cost_of(&gplan) + 1e-6);
    }

    #[test]
    fn tiny_budget_fails_gracefully() {
        let (mut c, rep, stats) = t1_rep();
        let price = c.lookup("price").unwrap();
        let spec = QuerySpec {
            group_by: vec![c.lookup("customer").unwrap()],
            final_funcs: vec![AggOp::Sum(price)],
            final_outputs: vec![c.intern("rev_tiny")],
            ..Default::default()
        };
        let err = exhaustive(
            rep.ftree(),
            &spec,
            &stats,
            &mut c,
            ExhaustiveConfig { max_states: 1 },
        );
        assert!(matches!(err, Err(FdbError::PlanningFailed(_))));
    }
}
