//! Quickstart: SQL on factorised data in five steps.
//!
//! Opens a [`fdb::Db`], registers the pizzeria base relations, queries
//! through a [`fdb::Session`] — rows, EXPLAIN rendering and execution
//! stats in one [`fdb::QueryOutcome`] — and cross-checks against the
//! relational baseline engine.
//!
//! Run with: `cargo run --release --example quickstart`

use fdb::relational::engine::{PlanMode, RdbEngine};
use fdb::relational::GroupStrategy;
use fdb::workload::pizzeria::pizzeria;
use fdb::{Catalog, Db, FdbEngine};

fn main() {
    // 1. A catalog, the Figure 1 database, and a Db to serve it.
    let mut catalog = Catalog::new();
    let data = pizzeria(&mut catalog);
    let mut engine = FdbEngine::new(catalog);
    engine.register_relation("Orders", data.orders.clone());
    engine.register_relation("Pizzas", data.pizzas.clone());
    engine.register_relation("Items", data.items.clone());
    let db = Db::from_engine(engine);

    // 2. Cut a session: an immutable snapshot sharing the registered
    //    arenas — cheap enough to hand one to every thread.
    let mut session = db.session();

    // 3. One call parses, plans, runs and enumerates.
    let sql = "SELECT customer, SUM(price) AS revenue \
               FROM Orders, Pizzas, Items \
               GROUP BY customer \
               ORDER BY revenue DESC \
               LIMIT 2";
    println!("query: {sql}\n");
    let out = session.query(sql).expect("query runs");

    // 4. The outcome carries the full report, not just rows.
    println!("{}", out.explain);
    println!(
        "ordering strategy: {:?}; rows enumerated: {}; intermediate bytes: {}",
        out.strategy, out.order.rows_enumerated, out.exec.intermediate_bytes
    );
    println!("columns: {}", out.columns.join(", "));
    println!("\nFDB result:\n{}", out.rows.display(session.catalog()));

    // 5. Cross-check with the relational baseline engine.
    let mut rdb = RdbEngine::new(session.catalog().clone(), GroupStrategy::Sort);
    rdb.register("Orders", data.orders);
    rdb.register("Pizzas", data.pizzas);
    rdb.register("Items", data.items);
    let schemas = rdb.schemas();
    let query = fdb::parse(sql, &mut rdb.catalog, &schemas).expect("valid SQL");
    let baseline = rdb
        .run(&query.to_task(), PlanMode::Naive)
        .expect("baseline runs");
    println!("RDB result:\n{}", baseline.display(&rdb.catalog));
    assert_eq!(out.rows.canonical(), baseline.canonical());
    println!("both engines agree ✓");
}
