//! Update churn: per-tuple delta maintenance vs full rebuild.
//!
//! The write path (DESIGN.md §9) localises a single-tuple INSERT/DELETE
//! to the spine touched by the tuple: one COW clone of the arena (flat
//! `Vec` memcpy) plus an `O(depth · log fanout)` spine rewrite sharing
//! every untouched fragment by id. The alternative a system without
//! delta maintenance faces is a **full rebuild**: re-factorise the flat
//! relation from scratch on every write.
//!
//! This bin churns `W` tuples through the **trie of the flat join**
//! (the path f-tree the engine builds for stored inputs — the shape on
//! which single-tuple deletes are always exact; on branching trees they
//! are JD-constrained, see `fdb-core/src/update.rs`). Each pass deletes
//! then re-inserts, so the data returns to its starting state, and
//! reports per-tuple seconds for
//!
//! * **FDB delta** — clone + single-tuple mutate per write (exactly what
//!   a one-op [`fdb::Db`] batch pays);
//! * **FDB delta-batch** — one clone amortised over the whole batch
//!   (what a multi-op batch pays per tuple);
//! * **rebuild** — mirror the write in the flat relation and
//!   re-run `FRep::from_relation`.
//!
//! The binary asserts its own acceptance criteria: the delta-maintained
//! rep stays **byte-identical** (`same_data`) to the rebuilt rep at
//! every step, the final state equals the initial one, the per-tuple
//! delta cost (batch-amortised — what the write path pays per op) is
//! **≥ 10× faster** than the rebuild at s=1, and even the
//! clone-per-op configuration beats the rebuild outright.
//!
//! `cargo run --release -p fdb-bench --bin update_churn -- --scale 1 --json out.json`

use fdb_bench::{median_secs, Args};
use fdb_core::{FRep, FTree};
use fdb_relational::{Catalog, Relation, Value};
use fdb_workload::orders::{generate, OrdersConfig};

/// Tuples deleted and re-inserted per timed pass.
const W: usize = 16;

/// Every `total/W`-th tuple of the view, in enumeration order — a
/// deterministic sample spread across the whole trie.
fn victims(rep: &FRep) -> Vec<Vec<Value>> {
    let total = rep.tuple_count();
    assert!(total >= W, "need at least {W} tuples, have {total}");
    let stride = total / W;
    let mut rows = Vec::with_capacity(W);
    let mut i = 0usize;
    rep.for_each_tuple(|row| {
        if i % stride == 0 && rows.len() < W {
            rows.push(row.to_vec());
        }
        i += 1;
    });
    rows
}

/// Applies one delete+reinsert churn pass with a COW clone per op —
/// the single-op write-batch cost — returning the final rep.
fn churn_delta_per_op(start: &FRep, rows: &[Vec<Value>]) -> FRep {
    let mut rep = start.clone();
    for row in rows {
        let mut next = rep.clone();
        assert!(next.delete(row).expect("delete plans"), "victim present");
        rep = next;
    }
    for row in rows {
        let mut next = rep.clone();
        assert!(next.insert(row).expect("insert plans"), "victim absent");
        rep = next;
    }
    rep
}

/// One clone amortised over the whole batch (multi-op batch cost).
fn churn_delta_batch(start: &FRep, rows: &[Vec<Value>]) -> FRep {
    let mut rep = start.clone();
    for row in rows {
        assert!(rep.delete(row).expect("delete plans"));
    }
    for row in rows {
        assert!(rep.insert(row).expect("insert plans"));
    }
    rep
}

/// Mirrors each write in the flat relation and rebuilds from scratch —
/// what a system without delta maintenance pays per write.
fn churn_rebuild(rep: &FRep, flat: &Relation, rows: &[Vec<Value>]) -> FRep {
    let tree = rep.ftree().clone();
    let mut mirror = flat.clone();
    let mut rebuilt = rep.clone();
    for row in rows {
        assert!(mirror.delete_row(row), "victim present in the mirror");
        rebuilt = FRep::from_relation(&mirror, tree.clone()).expect("rebuild");
    }
    for row in rows {
        assert!(mirror.insert(row), "victim absent from the mirror");
        rebuilt = FRep::from_relation(&mirror, tree.clone()).expect("rebuild");
    }
    rebuilt
}

fn main() {
    let args = Args::parse(1, 1);
    let scale = args.scale;
    let mut emit = args.emitter();
    println!("# Update churn at scale {scale}: {W} deletes + {W} re-inserts per pass");

    let mut catalog = Catalog::new();
    let ds = generate(
        &mut catalog,
        &OrdersConfig {
            customers: args.customers,
            ..OrdersConfig::at_scale(scale)
        },
    );
    // The trie of the flat join Orders ⋈ Packages ⋈ Items: a path
    // f-tree over the join's attributes in schema order.
    let joined = ds.join();
    let rep = FRep::from_relation(&joined, FTree::path(joined.schema().attrs()))
        .expect("flat join factorises over its trie");
    // The flat relation in the view's schema order, deduplicated —
    // the rebuild baseline's input.
    let flat = {
        let mut rows: Vec<Vec<Value>> = Vec::with_capacity(rep.tuple_count());
        rep.for_each_tuple(|row| rows.push(row.to_vec()));
        Relation::from_rows(rep.schema(), rows)
    };
    let rows = victims(&rep);
    let ops = 2 * W;
    let ibytes = rep.stats().bytes;
    println!(
        "# view: {} tuples, {} singletons, {} arena bytes",
        rep.tuple_count(),
        rep.stats().singletons,
        ibytes
    );

    // Correctness first, untimed: after every single write the delta-
    // maintained rep is byte-identical to the from-scratch rebuild.
    {
        let tree = rep.ftree().clone();
        let mut delta = rep.clone();
        let mut mirror = flat.clone();
        for (step, row) in rows.iter().chain(rows.iter()).enumerate() {
            if step < W {
                assert!(delta.delete(row).unwrap());
                assert!(mirror.delete_row(row));
            } else {
                assert!(delta.insert(row).unwrap());
                assert!(mirror.insert(row));
            }
            let rebuilt = FRep::from_relation(&mirror, tree.clone()).expect("rebuild");
            assert!(
                delta.same_data(&rebuilt),
                "step {step}: delta diverged from rebuild"
            );
        }
        assert!(
            delta.same_data(&rep),
            "delete+reinsert churn must return to the initial state"
        );
    }
    println!("# acceptance: delta byte-identical to rebuild at every one of {ops} steps");

    let (final_delta, t_delta) = median_secs(args.repeats, || churn_delta_per_op(&rep, &rows));
    let (final_batch, t_batch) = median_secs(args.repeats, || churn_delta_batch(&rep, &rows));
    let (final_rebuild, t_rebuild) =
        median_secs(args.repeats, || churn_rebuild(&rep, &flat, &rows));
    assert!(final_delta.same_data(&rep) && final_batch.same_data(&rep));
    assert!(final_rebuild.same_data(&rep));

    let per = |t: f64| t / ops as f64;
    emit.row(
        "update_churn",
        scale,
        "churn-per-op",
        "FDB delta",
        per(t_delta),
        &format!("ibytes={ibytes} ops={ops} tuples={}", rep.tuple_count()),
    );
    emit.row(
        "update_churn",
        scale,
        "churn-per-op",
        "FDB delta-batch",
        per(t_batch),
        &format!("ibytes={ibytes} ops={ops} tuples={}", rep.tuple_count()),
    );
    emit.row(
        "update_churn",
        scale,
        "churn-per-op",
        "rebuild",
        per(t_rebuild),
        &format!("ibytes={ibytes} ops={ops} tuples={}", rep.tuple_count()),
    );

    // Acceptance: ≥10× per-tuple win for delta maintenance at s=1. The
    // per-tuple cost of the write path is the batch-amortised one (a
    // [`fdb::Db`] batch clones the touched input once, then applies
    // every op to the clone); the single-op row additionally pays the
    // whole COW clone per tuple and must still beat the rebuild.
    let ratio = t_rebuild / t_batch.max(f64::EPSILON);
    assert!(
        ratio >= 10.0,
        "delta maintenance must beat the full rebuild ≥10× per tuple \
         (got {ratio:.1}×: {:.3e}s vs {:.3e}s per op)",
        per(t_batch),
        per(t_rebuild)
    );
    let solo = t_rebuild / t_delta.max(f64::EPSILON);
    assert!(
        solo >= 1.5,
        "even clone-per-op delta must beat the rebuild (got {solo:.2}×)"
    );
    println!(
        "# acceptance: delta {:.3e}s/op ({ratio:.0}× faster than rebuild's \
         {:.3e}s/op); clone-per-op {:.3e}s/op ({solo:.1}×)",
        per(t_batch),
        per(t_rebuild),
        per(t_delta)
    );
    emit.finish();
}
