//! End-to-end checks of the numbers the paper derives in its running
//! examples (§1 Example 1, §3 Examples 6 and 8), driven through SQL and
//! checked across every engine and plan flavour.

mod common;

use common::pizzeria_engines;
use fdb::relational::Value;

#[test]
fn example1_query_s_price_of_each_ordered_pizza() {
    let mut e = pizzeria_engines();
    let out = e.assert_all_agree(
        "SELECT customer, date, pizza, SUM(price) AS total \
         FROM Orders, Pizzas, Items \
         GROUP BY customer, date, pizza",
    );
    // Five orders; Capricciosa totals 8, Hawaii 9, Margherita 6.
    assert_eq!(out.len(), 5);
    let by_pizza: Vec<(String, i64)> = out
        .rows()
        .map(|r| (r[2].as_str().unwrap().to_string(), r[3].as_int().unwrap()))
        .collect();
    for (pizza, total) in by_pizza {
        let expected = match pizza.as_str() {
            "Capricciosa" => 8,
            "Hawaii" => 9,
            "Margherita" => 6,
            other => panic!("unexpected pizza {other}"),
        };
        assert_eq!(total, expected, "{pizza}");
    }
}

#[test]
fn example1_query_p_revenue_per_customer() {
    let mut e = pizzeria_engines();
    let out = e.assert_all_agree(
        "SELECT customer, SUM(price) AS revenue \
         FROM Orders, Pizzas, Items GROUP BY customer",
    );
    let rows: Vec<(String, i64)> = out
        .rows()
        .map(|r| (r[0].as_str().unwrap().to_string(), r[1].as_int().unwrap()))
        .collect();
    assert_eq!(
        rows,
        vec![
            ("Lucia".to_string(), 9),
            ("Mario".to_string(), 22),
            ("Pietro".to_string(), 9)
        ]
    );
}

#[test]
fn example1_scenario3_revenue_per_customer_and_pizza() {
    let mut e = pizzeria_engines();
    let out = e.assert_all_agree(
        "SELECT customer, pizza, SUM(price) AS revenue \
         FROM Orders, Pizzas, Items GROUP BY customer, pizza",
    );
    // Mario: Capricciosa 16 (two dates × 8), Margherita 6.
    let mario: Vec<(String, i64)> = out
        .rows()
        .filter(|r| r[0].as_str() == Some("Mario"))
        .map(|r| (r[1].as_str().unwrap().to_string(), r[2].as_int().unwrap()))
        .collect();
    assert_eq!(
        mario,
        vec![
            ("Capricciosa".to_string(), 16),
            ("Margherita".to_string(), 6)
        ]
    );
}

#[test]
fn example6_count_composition() {
    // count over pizzas-with-items must weigh each pizza by its items:
    // 7 (pizza, item) pairs, not 3 pizzas.
    let mut e = pizzeria_engines();
    let out = e.assert_all_agree("SELECT COUNT(*) AS n FROM Pizzas");
    assert_eq!(out.row(0)[0], Value::Int(7));
}

#[test]
fn full_join_count() {
    let mut e = pizzeria_engines();
    let out = e.assert_all_agree("SELECT COUNT(*) AS n FROM Orders, Pizzas, Items");
    assert_eq!(out.row(0)[0], Value::Int(13));
}

#[test]
fn total_revenue_scalar() {
    let mut e = pizzeria_engines();
    let out = e.assert_all_agree("SELECT SUM(price) AS total FROM Orders, Pizzas, Items");
    // 8 + 8 + 9 + 9 + 6 = 40.
    assert_eq!(out.row(0)[0], Value::Int(40));
}

#[test]
fn min_max_avg_per_pizza() {
    let mut e = pizzeria_engines();
    let out = e.assert_all_agree(
        "SELECT pizza, MIN(price) AS lo, MAX(price) AS hi, AVG(price) AS mean \
         FROM Pizzas, Items GROUP BY pizza",
    );
    let caps: Vec<Value> = out
        .rows()
        .find(|r| r[0].as_str() == Some("Capricciosa"))
        .map(|r| r[1..].to_vec())
        .unwrap();
    assert_eq!(
        caps,
        vec![Value::Int(1), Value::Int(6), Value::Float(8.0 / 3.0)]
    );
}

#[test]
fn having_clause_filters_revenue() {
    let mut e = pizzeria_engines();
    let out = e.assert_all_agree(
        "SELECT customer, SUM(price) AS revenue \
         FROM Orders, Pizzas, Items GROUP BY customer HAVING revenue > 10",
    );
    assert_eq!(out.len(), 1);
    assert_eq!(out.row(0)[0], Value::str("Mario"));
}

#[test]
fn where_clause_on_price() {
    let mut e = pizzeria_engines();
    let out = e.assert_all_agree(
        "SELECT customer, SUM(price) AS cheap_revenue \
         FROM Orders, Pizzas, Items WHERE price < 6 GROUP BY customer",
    );
    // Cheap toppings only: Lucia 3, Mario 4, Pietro 3.
    let rows: Vec<(String, i64)> = out
        .rows()
        .map(|r| (r[0].as_str().unwrap().to_string(), r[1].as_int().unwrap()))
        .collect();
    assert_eq!(
        rows,
        vec![
            ("Lucia".to_string(), 3),
            ("Mario".to_string(), 4),
            ("Pietro".to_string(), 3)
        ]
    );
}

#[test]
fn example2_order_by_customer_pizza_item() {
    // Example 2: the order (customer, pizza, item, price) is obtainable
    // by restructuring; verify the streamed order end-to-end.
    let mut e = pizzeria_engines();
    let sql = "SELECT customer, pizza, item, price \
               FROM Orders, Pizzas, Items \
               ORDER BY customer, pizza, item, price";
    e.assert_all_agree(sql);
    let out = e.run_fdb(sql);
    // Set semantics: projecting `date` away merges Mario's two
    // Capricciosa order dates, so 10 distinct tuples remain of the 13.
    assert_eq!(out.len(), 10);
    let keys: Vec<Vec<String>> = out
        .rows()
        .map(|r| r.iter().map(|v| v.to_string()).collect())
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "streamed enumeration must be sorted");
    assert_eq!(out.row(0)[0], Value::str("Lucia"));
}

#[test]
fn order_by_revenue_with_limit() {
    // Q7-flavoured: order by the aggregation result, keep the top group.
    let mut e = pizzeria_engines();
    let out = e.run_fdb(
        "SELECT customer, SUM(price) AS revenue \
         FROM Orders, Pizzas, Items GROUP BY customer \
         ORDER BY revenue DESC, customer LIMIT 2",
    );
    assert_eq!(out.len(), 2);
    assert_eq!(out.row(0)[0], Value::str("Mario"));
    assert_eq!(out.row(0)[1], Value::Int(22));
    assert_eq!(out.row(1)[0], Value::str("Lucia"));
}

#[test]
fn distinct_projection_via_group_by() {
    let mut e = pizzeria_engines();
    let out = e.assert_all_agree("SELECT pizza FROM Orders, Pizzas GROUP BY pizza");
    assert_eq!(out.len(), 3);
}

#[test]
fn count_distinct_packages_per_customer() {
    let mut e = pizzeria_engines();
    let out =
        e.assert_all_agree("SELECT customer, COUNT(*) AS orders FROM Orders GROUP BY customer");
    let mario = out.rows().find(|r| r[0].as_str() == Some("Mario")).unwrap()[1].clone();
    assert_eq!(mario, Value::Int(3));
}
