//! Factorised representations over f-trees (Definition 1).
//!
//! A factorisation over an f-tree is stored in its canonical grouped form:
//! for a node `n` with children `c1…ck`, the data under one group is
//! `⋃_a (⟨n:a⟩ × E1(a) × … × Ek(a))` — a [`Union`] of [`Entry`]s, each
//! holding the singleton value and one child [`Union`] per child of `n`.
//!
//! Invariants maintained by every operator:
//! * entries of every union are sorted by **strictly ascending** value
//!   (§4.1: "singletons within each union are kept sorted");
//! * `Entry::children` is parallel to the f-tree's child list;
//! * unions are non-empty everywhere except at the roots (empty unions are
//!   pruned bottom-up, so emptiness is only representable at the top).

use crate::error::{FdbError, Result};
use crate::ftree::{FTree, NodeId, NodeLabel};
use fdb_relational::{AttrId, Catalog, Relation, Schema, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One singleton value plus the factorisations of the child subtrees.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    pub value: Value,
    /// One union per child of this entry's node, in f-tree child order.
    pub children: Vec<Union>,
}

/// A union of singleton-rooted products for one f-tree node.
#[derive(Clone, Debug, PartialEq)]
pub struct Union {
    /// The f-tree node this union ranges over.
    pub node: NodeId,
    /// Entries sorted by strictly ascending value.
    pub entries: Vec<Entry>,
}

impl Union {
    /// An empty union for `node`.
    pub fn empty(node: NodeId) -> Self {
        Union {
            node,
            entries: Vec::new(),
        }
    }

    /// Binary search for an entry by value.
    pub fn find(&self, value: &Value) -> Option<usize> {
        self.entries.binary_search_by(|e| e.value.cmp(value)).ok()
    }

    /// Number of singletons in this union and all its descendants.
    pub fn singleton_count(&self) -> usize {
        self.entries
            .iter()
            .map(|e| 1 + e.children.iter().map(Union::singleton_count).sum::<usize>())
            .sum()
    }
}

/// A factorised representation: an f-tree plus one union per root.
#[derive(Clone, Debug)]
pub struct FRep {
    ftree: FTree,
    roots: Vec<Union>,
}

impl FRep {
    /// Wraps pre-built unions (crate-internal; operators use this).
    ///
    /// Empty root unions are re-tagged to the (possibly restructured)
    /// f-tree's root ids: an operator on an empty relation changes the
    /// tree but has no entries to carry the new node ids.
    pub(crate) fn from_parts(ftree: FTree, mut roots: Vec<Union>) -> Self {
        let root_ids: Vec<NodeId> = ftree.roots().to_vec();
        for (u, &rid) in roots.iter_mut().zip(&root_ids) {
            if u.entries.is_empty() {
                u.node = rid;
            }
        }
        FRep { ftree, roots }
    }

    /// Builds a representation from externally constructed unions,
    /// validating the structural invariants (sorted distinct entries,
    /// child arity, no empty inner unions).
    ///
    /// This is the constructor for callers that assemble factorisations
    /// directly — e.g. data generators that know the grouping structure
    /// and can emit the factorised form in linear time.
    pub fn new(ftree: FTree, roots: Vec<Union>) -> Result<FRep> {
        let rep = FRep { ftree, roots };
        rep.check_invariants()?;
        Ok(rep)
    }

    /// The empty relation over `ftree`'s schema.
    pub fn empty(ftree: FTree) -> Self {
        let roots = ftree.roots().iter().map(|&r| Union::empty(r)).collect();
        FRep { ftree, roots }
    }

    /// Builds the factorisation of `rel` over `ftree` by recursive grouping.
    ///
    /// Every f-tree node must be an atomic single-attribute node and the
    /// exposed attributes must be exactly `rel`'s schema. For a *path*
    /// f-tree the result always represents `rel` exactly (a sorted trie);
    /// for branching f-trees it represents `rel` exactly iff `rel`
    /// satisfies the join dependencies the branching asserts (Prop. 1) —
    /// `debug_assert`ed here, and guaranteed by construction when the
    /// f-plan operators build the branching themselves.
    pub fn from_relation(rel: &Relation, ftree: FTree) -> Result<FRep> {
        Self::from_relation_with(rel, ftree, 1)
    }

    /// [`FRep::from_relation`] with construction partitioned over the
    /// leading union: the root-level grouping is computed once, then the
    /// child factorisations of the root entries are built on up to
    /// `threads` workers. Grouping is order-deterministic (`BTreeMap`),
    /// so the result is identical for every thread count; `threads <= 1`
    /// is exactly the serial build.
    pub fn from_relation_with(rel: &Relation, ftree: FTree, threads: usize) -> Result<FRep> {
        let mut col_of: BTreeMap<AttrId, usize> = BTreeMap::new();
        for n in ftree.live_nodes() {
            match &ftree.node(n).label {
                NodeLabel::Atomic(attrs) if attrs.len() == 1 => {
                    let pos = rel.schema().position(attrs[0]).ok_or_else(|| {
                        FdbError::Unresolved(format!(
                            "f-tree attribute {} missing from relation schema",
                            attrs[0]
                        ))
                    })?;
                    col_of.insert(attrs[0], pos);
                }
                _ => {
                    return Err(FdbError::InvalidOperator(
                        "from_relation needs single-attribute atomic nodes".into(),
                    ))
                }
            }
        }
        if col_of.len() != rel.arity() {
            return Err(FdbError::Unresolved(
                "f-tree does not cover the relation schema".into(),
            ));
        }
        let all_rows: Vec<usize> = (0..rel.len()).collect();
        let roots = ftree
            .roots()
            .iter()
            .map(|&r| build_union_par(rel, &ftree, r, &all_rows, &col_of, threads))
            .collect();
        let rep = FRep { ftree, roots };
        debug_assert!(rep.check_invariants().is_ok());
        Ok(rep)
    }

    /// The nesting structure.
    pub fn ftree(&self) -> &FTree {
        &self.ftree
    }

    pub(crate) fn ftree_mut(&mut self) -> &mut FTree {
        &mut self.ftree
    }

    /// Root unions, parallel to `ftree().roots()`.
    pub fn roots(&self) -> &[Union] {
        &self.roots
    }

    /// Mutable root access; only tests use this (to corrupt invariants).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn roots_mut(&mut self) -> &mut Vec<Union> {
        &mut self.roots
    }

    /// Decomposes into parts (crate-internal).
    pub(crate) fn into_parts(self) -> (FTree, Vec<Union>) {
        (self.ftree, self.roots)
    }

    /// True if the represented relation is empty.
    pub fn is_empty(&self) -> bool {
        self.roots.iter().any(|u| u.entries.is_empty())
    }

    /// Total number of singletons — the paper's size measure for
    /// factorisations (§6 reports sizes in singletons).
    pub fn singleton_count(&self) -> usize {
        self.roots.iter().map(Union::singleton_count).sum()
    }

    /// Number of tuples in the represented relation (product of root
    /// counts of a quick recursive walk; cheap relative to enumeration).
    pub fn tuple_count(&self) -> usize {
        if self.is_empty() {
            return 0;
        }
        self.roots.iter().map(count_tuples).product()
    }

    /// Output schema in f-tree pre-order: every atomic class contributes
    /// all its attributes, every aggregate node its output columns.
    pub fn schema(&self) -> Schema {
        Schema::new(self.ftree.all_attrs())
    }

    /// Flattens into a relation laid out per [`FRep::schema`].
    ///
    /// This is the `FDB` (flat output) mode of the experiments; `FDB f/o`
    /// keeps the `FRep`.
    pub fn flatten(&self) -> Relation {
        let schema = self.schema();
        let mut out = Relation::empty(schema);
        let mut buf: Vec<Value> = Vec::with_capacity(out.arity());
        self.for_each_tuple(|row| {
            buf.clear();
            buf.extend_from_slice(row);
            out.push_row(&buf);
        });
        out
    }

    /// Invokes `f` once per represented tuple, laid out per [`FRep::schema`].
    pub fn for_each_tuple(&self, mut f: impl FnMut(&[Value])) {
        if self.is_empty() {
            return;
        }
        let width: usize = self.schema().arity();
        let mut row: Vec<Value> = vec![Value::Int(0); width];
        // Column offsets per node in pre-order.
        let mut offsets: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut off = 0;
        for n in self.ftree.live_nodes() {
            offsets.insert(n, off);
            off += self.ftree.node(n).label.exposed_attrs().len();
        }
        fn rec(
            rep: &FRep,
            unions: &[&Union],
            idx: usize,
            offsets: &BTreeMap<NodeId, usize>,
            row: &mut Vec<Value>,
            f: &mut impl FnMut(&[Value]),
        ) {
            if idx == unions.len() {
                f(row);
                return;
            }
            let u = unions[idx];
            let label = &rep.ftree.node(u.node).label;
            let off = offsets[&u.node];
            for e in &u.entries {
                write_values(label, &e.value, &mut row[off..]);
                if e.children.is_empty() {
                    rec(rep, unions, idx + 1, offsets, row, f);
                } else {
                    // Expand this entry's children before the remaining
                    // sibling unions: pre-order within the subtree, then
                    // continue with the siblings.
                    let mut next: Vec<&Union> = e.children.iter().collect();
                    next.extend_from_slice(&unions[idx + 1..]);
                    rec(rep, &next, 0, offsets, row, f);
                }
            }
        }
        let top: Vec<&Union> = self.roots.iter().collect();
        rec(self, &top, 0, &offsets, &mut row, &mut f);
    }

    /// Structural invariant check (used by tests and `debug_assert`s).
    pub fn check_invariants(&self) -> Result<()> {
        if self.roots.len() != self.ftree.roots().len() {
            return Err(FdbError::InvalidOperator(
                "root union count mismatch".into(),
            ));
        }
        for (u, &r) in self.roots.iter().zip(self.ftree.roots()) {
            self.check_union(u, r, true)?;
        }
        Ok(())
    }

    fn check_union(&self, u: &Union, node: NodeId, at_root: bool) -> Result<()> {
        if u.node != node {
            return Err(FdbError::InvalidOperator(format!(
                "union node {:?} does not match f-tree node {:?}",
                u.node, node
            )));
        }
        if !at_root && u.entries.is_empty() {
            return Err(FdbError::InvalidOperator(
                "empty union below the roots".into(),
            ));
        }
        let children = &self.ftree.node(node).children;
        let mut prev: Option<&Value> = None;
        for e in &u.entries {
            if let Some(p) = prev {
                if p >= &e.value {
                    return Err(FdbError::InvalidOperator(format!(
                        "union entries not strictly ascending at {node:?}"
                    )));
                }
            }
            prev = Some(&e.value);
            if e.children.len() != children.len() {
                return Err(FdbError::InvalidOperator(format!(
                    "entry has {} child unions, f-tree node has {} children",
                    e.children.len(),
                    children.len()
                )));
            }
            for (cu, &cn) in e.children.iter().zip(children) {
                self.check_union(cu, cn, false)?;
            }
        }
        Ok(())
    }

    /// Renders the factorisation in the paper's nested notation.
    pub fn display(&self, catalog: &Catalog) -> String {
        let mut out = String::new();
        for (i, u) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push_str(" × ");
            }
            self.display_union(u, catalog, &mut out);
        }
        out
    }

    fn display_union(&self, u: &Union, catalog: &Catalog, out: &mut String) {
        if u.entries.len() != 1 {
            out.push('(');
        }
        for (i, e) in u.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(" ∪ ");
            }
            let label = &self.ftree.node(u.node).label;
            let name = match label {
                NodeLabel::Atomic(attrs) => catalog.name(attrs[0]).to_string(),
                NodeLabel::Agg(l) => {
                    let fs: Vec<String> = l.funcs.iter().map(|f| f.display(catalog)).collect();
                    fs.join(",")
                }
            };
            let _ = write!(out, "⟨{name}:{}⟩", e.value);
            for cu in &e.children {
                out.push_str(" × ");
                self.display_union(cu, catalog, out);
            }
        }
        if u.entries.len() != 1 {
            out.push(')');
        }
    }
}

/// Writes an entry's value into the output row slots of its node.
fn write_values(label: &NodeLabel, value: &Value, slots: &mut [Value]) {
    match label {
        NodeLabel::Atomic(attrs) => {
            // Every member of the equivalence class carries the value.
            for slot in slots.iter_mut().take(attrs.len()) {
                *slot = value.clone();
            }
        }
        NodeLabel::Agg(l) => {
            if l.arity() == 1 {
                slots[0] = value.clone();
            } else {
                let comps = value.as_tup().expect("composite aggregate holds a Tup");
                for (i, c) in comps.iter().enumerate() {
                    slots[i] = c.clone();
                }
            }
        }
    }
}

/// Extracts the output value of `attr` from an entry of `label`.
pub fn value_for_attr(label: &NodeLabel, value: &Value, attr: AttrId) -> Option<Value> {
    match label {
        NodeLabel::Atomic(attrs) => attrs.contains(&attr).then(|| value.clone()),
        NodeLabel::Agg(l) => {
            let i = l.outputs.iter().position(|&o| o == attr)?;
            if l.arity() == 1 {
                Some(value.clone())
            } else {
                value.as_tup().map(|t| t[i].clone())
            }
        }
    }
}

fn count_tuples(u: &Union) -> usize {
    u.entries
        .iter()
        .map(|e| e.children.iter().map(count_tuples).product::<usize>())
        .sum()
}

fn build_union(
    rel: &Relation,
    ftree: &FTree,
    node: NodeId,
    rows: &[usize],
    col_of: &BTreeMap<AttrId, usize>,
) -> Union {
    build_union_par(rel, ftree, node, rows, col_of, 1)
}

/// Builds one union, fanning the children of the node's entries (the
/// leading union's groups) out to `threads` workers. Recursive builds
/// below the top level stay serial — the root fan-out already exposes
/// all the parallelism the data has.
fn build_union_par(
    rel: &Relation,
    ftree: &FTree,
    node: NodeId,
    rows: &[usize],
    col_of: &BTreeMap<AttrId, usize>,
    threads: usize,
) -> Union {
    let attr = match &ftree.node(node).label {
        NodeLabel::Atomic(attrs) => attrs[0],
        NodeLabel::Agg(_) => unreachable!("checked by from_relation"),
    };
    let col = col_of[&attr];
    let mut groups: BTreeMap<Value, Vec<usize>> = BTreeMap::new();
    for &r in rows {
        groups.entry(rel.row(r)[col].clone()).or_default().push(r);
    }
    let children = ftree.node(node).children.clone();
    let build_entry = |(value, group): (Value, Vec<usize>)| Entry {
        children: children
            .iter()
            .map(|&c| build_union(rel, ftree, c, &group, col_of))
            .collect(),
        value,
    };
    let entries = if threads <= 1 || children.is_empty() {
        groups.into_iter().map(build_entry).collect()
    } else {
        let groups: Vec<(Value, Vec<usize>)> = groups.into_iter().collect();
        fdb_exec::parallel_map(threads, groups, build_entry)
    };
    Union { node, entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The two-column relation of Example 3.
    fn example3() -> (Catalog, Relation) {
        let mut c = Catalog::new();
        let a = c.intern("A");
        let b = c.intern("B");
        let rel = Relation::from_rows(
            Schema::new(vec![a, b]),
            [(1, 1), (1, 2), (1, 3), (2, 1), (2, 2), (2, 3)]
                .into_iter()
                .map(|(x, y)| vec![Value::Int(x), Value::Int(y)]),
        );
        (c, rel)
    }

    #[test]
    fn path_factorisation_round_trips() {
        let (c, rel) = example3();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let t = FTree::path(&[a, b]);
        let rep = FRep::from_relation(&rel, t).unwrap();
        rep.check_invariants().unwrap();
        assert_eq!(rep.flatten().canonical(), rel.canonical());
        assert_eq!(rep.tuple_count(), 6);
        // Trie: 2 A-singletons + 2×3 B-singletons.
        assert_eq!(rep.singleton_count(), 8);
    }

    #[test]
    fn independent_branches_factorise_succinctly() {
        // Example 3: A and B are independent, so the forest {A} {B}
        // represents R with 2 + 3 = 5 singletons instead of 12.
        let (c, rel) = example3();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let mut t = FTree::new();
        t.add_node(NodeLabel::Atomic(vec![a]), None);
        t.add_node(NodeLabel::Atomic(vec![b]), None);
        let rep = FRep::from_relation(&rel, t).unwrap();
        assert_eq!(rep.singleton_count(), 5);
        assert_eq!(rep.flatten().canonical(), rel.canonical());
    }

    #[test]
    fn parallel_construction_matches_serial() {
        let mut c = Catalog::new();
        let x = c.intern("x");
        let y = c.intern("y");
        let z = c.intern("z");
        let rel = Relation::from_rows(
            Schema::new(vec![x, y, z]),
            (0..120).map(|i| {
                vec![
                    Value::Int(i % 11),
                    Value::Int((i * 3) % 7),
                    Value::Int(i % 5),
                ]
            }),
        )
        .canonical();
        let serial = FRep::from_relation(&rel, FTree::path(&[x, y, z])).unwrap();
        for threads in [2, 3, 4, 8] {
            let par = FRep::from_relation_with(&rel, FTree::path(&[x, y, z]), threads).unwrap();
            par.check_invariants().unwrap();
            assert_eq!(par.roots(), serial.roots(), "threads={threads}");
        }
    }

    #[test]
    fn empty_relation_representation() {
        let (c, rel) = example3();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let empty = Relation::empty(rel.schema().clone());
        let rep = FRep::from_relation(&empty, FTree::path(&[a, b])).unwrap();
        assert!(rep.is_empty());
        assert_eq!(rep.tuple_count(), 0);
        assert_eq!(rep.singleton_count(), 0);
        assert!(rep.flatten().is_empty());
    }

    #[test]
    fn branching_tree_with_valid_join_dependency() {
        // pizza → {date, item}: valid when date and item are independent
        // given pizza.
        let mut c = Catalog::new();
        let pizza = c.intern("pizza");
        let date = c.intern("date");
        let item = c.intern("item");
        let rel = Relation::from_rows(
            Schema::new(vec![pizza, date, item]),
            [
                ("Hawaii", 1, "base"),
                ("Hawaii", 1, "ham"),
                ("Hawaii", 2, "base"),
                ("Hawaii", 2, "ham"),
                ("Margherita", 1, "base"),
            ]
            .into_iter()
            .map(|(p, d, i)| vec![Value::str(p), Value::Int(d), Value::str(i)]),
        );
        let mut t = FTree::new();
        let np = t.add_node(NodeLabel::Atomic(vec![pizza]), None);
        t.add_node(NodeLabel::Atomic(vec![date]), Some(np));
        t.add_node(NodeLabel::Atomic(vec![item]), Some(np));
        t.add_dep([pizza, date]);
        t.add_dep([pizza, item]);
        let rep = FRep::from_relation(&rel, t).unwrap();
        assert_eq!(rep.flatten().canonical(), rel.canonical());
        // 2 pizzas + (2 dates + 2 items) + (1 date + 1 item).
        assert_eq!(rep.singleton_count(), 8);
    }

    #[test]
    fn sortedness_invariant_detected() {
        let (c, rel) = example3();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let mut rep = FRep::from_relation(&rel, FTree::path(&[a, b])).unwrap();
        // Corrupt the order.
        rep.roots_mut()[0].entries.reverse();
        assert!(rep.check_invariants().is_err());
    }

    #[test]
    fn find_binary_search() {
        let (c, rel) = example3();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let rep = FRep::from_relation(&rel, FTree::path(&[a, b])).unwrap();
        let u = &rep.roots()[0];
        assert_eq!(u.find(&Value::Int(2)), Some(1));
        assert_eq!(u.find(&Value::Int(9)), None);
    }

    #[test]
    fn display_uses_paper_notation() {
        let (c, rel) = example3();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let mut t = FTree::new();
        t.add_node(NodeLabel::Atomic(vec![a]), None);
        t.add_node(NodeLabel::Atomic(vec![b]), None);
        let rep = FRep::from_relation(&rel, t).unwrap();
        let s = rep.display(&c);
        assert!(s.contains("⟨A:1⟩ ∪ ⟨A:2⟩"));
        assert!(s.contains('×'));
    }

    #[test]
    fn flatten_layout_matches_schema() {
        let mut c = Catalog::new();
        let x = c.intern("x");
        let y = c.intern("y");
        let rel = Relation::from_rows(
            Schema::new(vec![y, x]), // note: relation order differs
            [(10, 1), (20, 2)]
                .into_iter()
                .map(|(b, a)| vec![Value::Int(b), Value::Int(a)]),
        );
        let rep = FRep::from_relation(&rel, FTree::path(&[x, y])).unwrap();
        let schema = rep.schema();
        assert_eq!(schema.attrs(), &[x, y]);
        let flat = rep.flatten();
        assert_eq!(flat.row(0), &[Value::Int(1), Value::Int(10)]);
    }
}
