//! Physical plan trees for the relational baseline engines.

use crate::attr::{AttrId, Catalog};
use crate::error::RelError;
use crate::expr::Predicate;
use crate::ops::aggregate::PhysAggSpec;
use crate::ops::{self, GroupStrategy};
use crate::relation::{Relation, SortKey};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Join algorithm choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinAlgo {
    Hash,
    SortMerge,
}

/// A physical relational plan.
///
/// Plans are trees of standard operators; [`execute`] evaluates them bottom
/// up, fully materialising each intermediate (the engines modelled here are
/// materialising main-memory engines).
#[derive(Clone, Debug)]
pub enum RelPlan {
    /// Leaf: a registered base relation.
    Scan(String),
    /// Filter by a conjunction of predicates.
    Select {
        input: Box<RelPlan>,
        preds: Vec<Predicate>,
    },
    /// Projection, optionally with duplicate elimination.
    Project {
        input: Box<RelPlan>,
        attrs: Vec<AttrId>,
        distinct: bool,
    },
    /// Natural join of the two inputs.
    Join {
        left: Box<RelPlan>,
        right: Box<RelPlan>,
        algo: JoinAlgo,
    },
    /// Grouped aggregation.
    GroupAggregate {
        input: Box<RelPlan>,
        group: Vec<AttrId>,
        aggs: Vec<PhysAggSpec>,
        /// `None` uses the engine's default strategy.
        strategy: Option<GroupStrategy>,
    },
    /// Derived columns computed per tuple (used to finalise `avg`).
    Derive {
        input: Box<RelPlan>,
        exprs: Vec<(DeriveExpr, AttrId)>,
    },
    /// Lexicographic sort.
    Sort {
        input: Box<RelPlan>,
        keys: Vec<SortKey>,
    },
    /// One page of the input order: skip the first `skip` tuples, then
    /// keep at most `k` (`None` keeps the rest — bare `OFFSET`).
    Limit {
        input: Box<RelPlan>,
        skip: usize,
        k: Option<usize>,
    },
}

/// Scalar expression for [`RelPlan::Derive`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeriveExpr {
    /// `num / den` as a float (the `avg = sum / count` finaliser).
    Div(AttrId, AttrId),
}

impl RelPlan {
    /// Convenience constructor for boxed children.
    pub fn select(self, preds: Vec<Predicate>) -> RelPlan {
        RelPlan::Select {
            input: Box::new(self),
            preds,
        }
    }

    pub fn project(self, attrs: Vec<AttrId>, distinct: bool) -> RelPlan {
        RelPlan::Project {
            input: Box::new(self),
            attrs,
            distinct,
        }
    }

    pub fn join(self, right: RelPlan, algo: JoinAlgo) -> RelPlan {
        RelPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            algo,
        }
    }

    pub fn group_aggregate(self, group: Vec<AttrId>, aggs: Vec<PhysAggSpec>) -> RelPlan {
        RelPlan::GroupAggregate {
            input: Box::new(self),
            group,
            aggs,
            strategy: None,
        }
    }

    pub fn derive(self, exprs: Vec<(DeriveExpr, AttrId)>) -> RelPlan {
        RelPlan::Derive {
            input: Box::new(self),
            exprs,
        }
    }

    pub fn sort(self, keys: Vec<SortKey>) -> RelPlan {
        RelPlan::Sort {
            input: Box::new(self),
            keys,
        }
    }

    pub fn limit(self, k: usize) -> RelPlan {
        self.page(0, Some(k))
    }

    /// `OFFSET skip [LIMIT k]` over the input order.
    pub fn page(self, skip: usize, k: Option<usize>) -> RelPlan {
        RelPlan::Limit {
            input: Box::new(self),
            skip,
            k,
        }
    }

    /// Multi-line indented rendering of the plan with attribute names.
    pub fn explain(&self, catalog: &Catalog) -> String {
        let mut out = String::new();
        self.explain_into(catalog, 0, &mut out);
        out
    }

    fn explain_into(&self, catalog: &Catalog, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self {
            RelPlan::Scan(name) => {
                let _ = writeln!(out, "{pad}Scan {name}");
            }
            RelPlan::Select { input, preds } => {
                let conds: Vec<String> = preds
                    .iter()
                    .map(|p| p.display(catalog).to_string())
                    .collect();
                let _ = writeln!(out, "{pad}Select [{}]", conds.join(" AND "));
                input.explain_into(catalog, depth + 1, out);
            }
            RelPlan::Project {
                input,
                attrs,
                distinct,
            } => {
                let names: Vec<&str> = attrs.iter().map(|&a| catalog.name(a)).collect();
                let d = if *distinct { " DISTINCT" } else { "" };
                let _ = writeln!(out, "{pad}Project{d} [{}]", names.join(", "));
                input.explain_into(catalog, depth + 1, out);
            }
            RelPlan::Join { left, right, algo } => {
                let _ = writeln!(out, "{pad}{algo:?}Join");
                left.explain_into(catalog, depth + 1, out);
                right.explain_into(catalog, depth + 1, out);
            }
            RelPlan::GroupAggregate {
                input,
                group,
                aggs,
                strategy,
            } => {
                let g: Vec<&str> = group.iter().map(|&a| catalog.name(a)).collect();
                let strat = strategy.map_or(String::new(), |s| format!(" ({s:?})"));
                let _ = writeln!(
                    out,
                    "{pad}GroupAggregate{strat} by [{}] -> {} aggregate(s)",
                    g.join(", "),
                    aggs.len()
                );
                input.explain_into(catalog, depth + 1, out);
            }
            RelPlan::Derive { input, exprs } => {
                let _ = writeln!(out, "{pad}Derive {} column(s)", exprs.len());
                input.explain_into(catalog, depth + 1, out);
            }
            RelPlan::Sort { input, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|k| format!("{}{:?}", catalog.name(k.attr), k.dir))
                    .collect();
                let _ = writeln!(out, "{pad}Sort [{}]", ks.join(", "));
                input.explain_into(catalog, depth + 1, out);
            }
            RelPlan::Limit { input, skip, k } => {
                match (skip, k) {
                    (0, Some(k)) => {
                        let _ = writeln!(out, "{pad}Limit {k}");
                    }
                    (s, Some(k)) => {
                        let _ = writeln!(out, "{pad}Limit {k} Offset {s}");
                    }
                    (s, None) => {
                        let _ = writeln!(out, "{pad}Offset {s}");
                    }
                }
                input.explain_into(catalog, depth + 1, out);
            }
        }
    }
}

/// Evaluates `plan` bottom-up against the registered `relations`.
pub fn execute(
    plan: &RelPlan,
    relations: &HashMap<String, Relation>,
    default_strategy: GroupStrategy,
) -> Result<Relation, RelError> {
    execute_with(plan, relations, default_strategy, 1)
}

/// [`execute`] with grouping and sorting parallelised on up to
/// `threads` workers (joins, selections and projections stay serial —
/// the paper's baselines are dominated by grouping and sorting).
pub fn execute_with(
    plan: &RelPlan,
    relations: &HashMap<String, Relation>,
    default_strategy: GroupStrategy,
    threads: usize,
) -> Result<Relation, RelError> {
    match plan {
        RelPlan::Scan(name) => relations
            .get(name)
            .cloned()
            .ok_or_else(|| RelError::UnknownRelation(name.clone())),
        RelPlan::Select { input, preds } => {
            let rel = execute_with(input, relations, default_strategy, threads)?;
            Ok(ops::select(&rel, preds))
        }
        RelPlan::Project {
            input,
            attrs,
            distinct,
        } => {
            let rel = execute_with(input, relations, default_strategy, threads)?;
            Ok(ops::project(&rel, attrs, *distinct))
        }
        RelPlan::Join { left, right, algo } => {
            let l = execute_with(left, relations, default_strategy, threads)?;
            let r = execute_with(right, relations, default_strategy, threads)?;
            Ok(match algo {
                JoinAlgo::Hash => ops::hash_join(&l, &r),
                JoinAlgo::SortMerge => ops::sort_merge_join(&l, &r),
            })
        }
        RelPlan::GroupAggregate {
            input,
            group,
            aggs,
            strategy,
        } => {
            let rel = execute_with(input, relations, default_strategy, threads)?;
            Ok(ops::group_aggregate_par(
                &rel,
                group,
                aggs,
                strategy.unwrap_or(default_strategy),
                threads,
            ))
        }
        RelPlan::Derive { input, exprs } => {
            let rel = execute_with(input, relations, default_strategy, threads)?;
            derive(&rel, exprs)
        }
        RelPlan::Sort { input, keys } => {
            let rel = execute_with(input, relations, default_strategy, threads)?;
            Ok(ops::order_by_par(&rel, keys, threads))
        }
        RelPlan::Limit { input, skip, k } => {
            let rel = execute_with(input, relations, default_strategy, threads)?;
            Ok(ops::page(&rel, *skip, *k))
        }
    }
}

fn derive(rel: &Relation, exprs: &[(DeriveExpr, AttrId)]) -> Result<Relation, RelError> {
    let schema = rel.schema().clone();
    let out_schema = crate::schema::Schema::new(
        schema
            .attrs()
            .iter()
            .copied()
            .chain(exprs.iter().map(|(_, out)| *out))
            .collect(),
    );
    let mut out = Relation::empty(out_schema);
    let mut buf: Vec<Value> = Vec::with_capacity(out.arity());
    for row in rel.rows() {
        buf.clear();
        buf.extend_from_slice(row);
        for (expr, _) in exprs {
            match expr {
                DeriveExpr::Div(num, den) => {
                    let pn = schema.position(*num).ok_or(RelError::MissingAttribute {
                        attr: format!("{num}"),
                        context: "derive".into(),
                    })?;
                    let pd = schema.position(*den).ok_or(RelError::MissingAttribute {
                        attr: format!("{den}"),
                        context: "derive".into(),
                    })?;
                    let n = row[pn].as_number().expect("numeric numerator").to_f64();
                    let d = row[pd].as_number().expect("numeric denominator").to_f64();
                    buf.push(Value::Float(n / d));
                }
            }
        }
        out.push_row(&buf);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AggFunc, AggSpec};
    use crate::schema::Schema;

    fn db() -> (Catalog, HashMap<String, Relation>) {
        let mut c = Catalog::new();
        let item = c.intern("item");
        let price = c.intern("price");
        let items = Relation::from_rows(
            Schema::new(vec![item, price]),
            [("base", 6), ("ham", 1), ("mushrooms", 1), ("pineapple", 2)]
                .into_iter()
                .map(|(i, p)| vec![Value::str(i), Value::Int(p)]),
        );
        let mut rels = HashMap::new();
        rels.insert("Items".to_string(), items);
        (c, rels)
    }

    #[test]
    fn scan_missing_relation_errors() {
        let (_, rels) = db();
        let err = execute(&RelPlan::Scan("Nope".into()), &rels, GroupStrategy::Sort);
        assert_eq!(err, Err(RelError::UnknownRelation("Nope".into())));
    }

    #[test]
    fn aggregate_sort_limit_pipeline() {
        let (mut c, rels) = db();
        let price = c.lookup("price").unwrap();
        let total = c.intern("total");
        let plan = RelPlan::Scan("Items".into())
            .group_aggregate(
                vec![],
                vec![AggSpec::new(AggFunc::Sum(price), total).into()],
            )
            .sort(vec![SortKey::asc(total)])
            .limit(1);
        let out = execute(&plan, &rels, GroupStrategy::Sort).unwrap();
        assert_eq!(out.row(0), &[Value::Int(10)]);
    }

    #[test]
    fn derive_divides() {
        let (mut c, rels) = db();
        let price = c.lookup("price").unwrap();
        let s = c.intern("s");
        let n = c.intern("n");
        let avg = c.intern("avg_price");
        let plan = RelPlan::Scan("Items".into())
            .group_aggregate(
                vec![],
                vec![
                    AggSpec::new(AggFunc::Sum(price), s).into(),
                    AggSpec::new(AggFunc::Count, n).into(),
                ],
            )
            .derive(vec![(DeriveExpr::Div(s, n), avg)]);
        let out = execute(&plan, &rels, GroupStrategy::Hash).unwrap();
        assert_eq!(out.row(0)[2], Value::Float(2.5));
    }

    #[test]
    fn explain_renders_tree() {
        let (mut c, _) = db();
        let price = c.lookup("price").unwrap();
        let total = c.intern("total");
        let plan = RelPlan::Scan("Items".into())
            .group_aggregate(
                vec![],
                vec![AggSpec::new(AggFunc::Sum(price), total).into()],
            )
            .sort(vec![SortKey::asc(total)]);
        let text = plan.explain(&c);
        assert!(text.contains("Sort"));
        assert!(text.contains("GroupAggregate"));
        assert!(text.contains("Scan Items"));
    }
}
