//! Paired engine setup over the benchmark dataset.
//!
//! A [`BenchEnv`] holds everything one figure needs at one scale:
//!
//! * `fdb` with the **factorised** view `R1` (over the paper's f-tree `T`)
//!   plus the base relations and the Orders trie `R3`;
//! * `rdb_sort` / `rdb_hash` with the **flat materialised** `R1` (which
//!   doubles as `R2 = o_{package,date,item}(R1)` — the flat view is
//!   materialised in exactly that order) and `R3`, plus the base
//!   relations for the flat-input experiment.

use fdb_core::engine::FdbEngine;
use fdb_core::FRep;
use fdb_relational::engine::RdbEngine;
use fdb_relational::planner::JoinAggTask;
use fdb_relational::{Catalog, GroupStrategy, Relation, SortKey};
use fdb_workload::orders::{generate, OrdersAttrs, OrdersConfig};

/// Dataset + engines for one scale.
pub struct BenchEnv {
    pub scale: u32,
    pub attrs: OrdersAttrs,
    pub fdb: FdbEngine,
    pub rdb_sort: RdbEngine,
    pub rdb_hash: RdbEngine,
    /// Size of the flat view in tuples (the paper reports 280M at s=32).
    pub flat_tuples: usize,
    /// Size of the factorised view in singletons (4.2M at s=32).
    pub view_singletons: usize,
    /// Physical arena footprint of the factorised view in bytes
    /// (capacity-aware, see `FRep::stats`).
    pub view_bytes: usize,
    /// Worker threads for both engine families (1 = serial).
    pub threads: usize,
}

/// What to materialise (the ORD experiment needs the flat views; the AGG
/// experiments on views do too; the flat-input experiment only needs base
/// relations).
#[derive(Clone, Copy, Debug)]
pub struct BenchSetup {
    pub config: OrdersConfig,
    /// Materialise the flat join for the relational engines (skipped when
    /// only factorised inputs are needed — it dominates setup time).
    pub materialise_flat: bool,
    /// Worker threads for both engine families (1 = serial, 0 = machine),
    /// so FDB-vs-RDB comparisons stay fair under parallelism.
    pub threads: usize,
}

impl BenchSetup {
    pub fn at_scale(scale: u32) -> Self {
        BenchSetup {
            config: OrdersConfig::at_scale(scale),
            materialise_flat: true,
            threads: 1,
        }
    }

    /// Builds the environment.
    pub fn build(&self) -> BenchEnv {
        let threads = fdb_exec::effective_threads(self.threads);
        let mut catalog = Catalog::new();
        let ds = generate(&mut catalog, &self.config);
        let a = ds.attrs;

        // Factorised side.
        let view: FRep = ds.factorised_view();
        let view_stats = view.stats();
        let view_singletons = view_stats.singletons;
        let view_bytes = view_stats.bytes;
        let flat_tuples = ds.flat_join_size();
        let mut fdb = FdbEngine::new(catalog.clone());
        fdb.register_view("R1", view);
        fdb.register_relation("Orders", ds.orders.clone());
        fdb.register_relation("Packages", ds.packages.clone());
        fdb.register_relation("Items", ds.items.clone());
        // R3 = o_{date,customer,package}(Orders): as a factorisation, the
        // trie in exactly that attribute order.
        let r3_flat = {
            let mut r = ds.orders.project_cols(&[a.date, a.customer, a.package]);
            r.sort_by_keys(&[
                SortKey::asc(a.date),
                SortKey::asc(a.customer),
                SortKey::asc(a.package),
            ]);
            r
        };
        let r3_rep = FRep::from_relation_with(
            &r3_flat,
            fdb_core::FTree::path(&[a.date, a.customer, a.package]),
            threads,
        )
        .expect("orders trie");
        fdb.register_view("R3", r3_rep);

        // Relational side.
        let mut rdb_sort = RdbEngine::new(catalog.clone(), GroupStrategy::Sort);
        let mut rdb_hash = RdbEngine::new(catalog.clone(), GroupStrategy::Hash);
        rdb_sort.threads = threads;
        rdb_hash.threads = threads;
        for rdb in [&mut rdb_sort, &mut rdb_hash] {
            rdb.register("Orders", ds.orders.clone());
            rdb.register("Packages", ds.packages.clone());
            rdb.register("Items", ds.items.clone());
            rdb.register("R3", r3_flat.clone());
        }
        if self.materialise_flat {
            // R1 materialised in (package, date, item) order: it therefore
            // *is* R2, matching the paper's Experiment 4 where Q10's order
            // is the stored order.
            let mut flat = ds.join();
            flat.sort_by_keys(&[
                SortKey::asc(a.package),
                SortKey::asc(a.date),
                SortKey::asc(a.item),
            ]);
            rdb_sort.register("R1", flat.clone());
            rdb_hash.register("R1", flat);
        }

        BenchEnv {
            scale: self.config.scale,
            attrs: a,
            fdb,
            rdb_sort,
            rdb_hash,
            flat_tuples,
            view_singletons,
            view_bytes,
            threads,
        }
    }
}

impl BenchEnv {
    /// Run options honouring the environment's thread count.
    fn run_opts(&self) -> fdb_core::RunOptions {
        fdb_core::RunOptions::with_threads(self.threads)
    }

    /// Runs a task on FDB with flat output, returning the tuple count
    /// (forces full enumeration, like the paper's `FDB` timings).
    pub fn run_fdb_flat(&mut self, task: &JoinAggTask) -> usize {
        let opts = self.run_opts();
        let result = self.fdb.run(task, opts).expect("fdb plans");
        result.to_relation().expect("fdb enumerates").len()
    }

    /// Runs a task on FDB keeping the output factorised (`FDB f/o`),
    /// returning the singleton count of the result.
    pub fn run_fdb_fo(&mut self, task: &JoinAggTask) -> usize {
        self.run_fdb_fo_stats(task).singletons
    }

    /// [`BenchEnv::run_fdb_fo`] returning the full size report of the
    /// result factorisation — the perf trajectory records the arena's
    /// byte footprint alongside the paper's singleton measure.
    pub fn run_fdb_fo_stats(&mut self, task: &JoinAggTask) -> fdb_core::FRepStats {
        self.run_fdb_fo_report(task).0
    }

    /// [`BenchEnv::run_fdb_fo_stats`] plus the staged executor's
    /// report — the perf trajectory gates on the intermediate
    /// arena bytes of the plan run (`ibytes=` in the `--json` notes).
    pub fn run_fdb_fo_report(
        &mut self,
        task: &JoinAggTask,
    ) -> (fdb_core::FRepStats, fdb_core::ExecStats) {
        let opts = self.run_opts();
        let result = self.fdb.run(task, opts).expect("fdb plans");
        (result.rep().stats(), result.exec_stats())
    }

    /// Runs a task on a relational baseline, returning the tuple count.
    pub fn run_rdb(
        &mut self,
        task: &JoinAggTask,
        strategy: GroupStrategy,
        mode: fdb_relational::engine::PlanMode,
    ) -> usize {
        let engine = match strategy {
            GroupStrategy::Sort => &mut self.rdb_sort,
            GroupStrategy::Hash => &mut self.rdb_hash,
        };
        engine.run(task, mode).expect("rdb runs").len()
    }

    /// The relational engines' ORD fast path: if the stored relation is
    /// already sorted by the requested keys, only a verifying scan + copy
    /// is needed (Experiment 4: "the relational engines need no additional
    /// sorting and only scan the relation" for Q10).
    pub fn run_rdb_ord(&mut self, input: &str, keys: &[SortKey], limit: Option<usize>) -> usize {
        let stored = self.rdb_sort.relation(input).expect("materialised input");
        if stored.is_sorted_by(keys) {
            // Stored order matches: emit a scan (or just the first k rows
            // under LIMIT — "negligible time", Experiment 4).
            return match limit {
                Some(k) => fdb_relational::ops::limit(stored, k).len(),
                None => stored.clone().len(),
            };
        }
        let out: Relation = fdb_relational::ops::order_by_par(stored, keys, self.threads);
        match limit {
            Some(k) => fdb_relational::ops::limit(&out, k).len(),
            None => out.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::paper_queries;
    use fdb_relational::engine::PlanMode;

    fn tiny_env() -> BenchEnv {
        BenchSetup {
            config: OrdersConfig {
                scale: 1,
                customers: 8,
                seed: 5,
            },
            materialise_flat: true,
            threads: 1,
        }
        .build()
    }

    #[test]
    fn all_thirteen_queries_agree_across_engines() {
        let mut env = tiny_env();
        let attrs = env.attrs;
        let queries = paper_queries(&mut env.fdb.catalog, &attrs);
        env.rdb_sort.catalog = env.fdb.catalog.clone();
        env.rdb_hash.catalog = env.fdb.catalog.clone();
        for q in &queries {
            let fdb_out = env
                .fdb
                .run_default(&q.task)
                .unwrap_or_else(|e| panic!("{} fdb: {e}", q.name))
                .to_relation()
                .unwrap()
                .canonical();
            let sort_out = env
                .rdb_sort
                .run(&q.task, PlanMode::Naive)
                .unwrap_or_else(|e| panic!("{} rdb: {e}", q.name))
                .canonical();
            assert_eq!(fdb_out, sort_out, "{} differs", q.name);
            let hash_out = env
                .rdb_hash
                .run(&q.task, PlanMode::Naive)
                .unwrap()
                .canonical();
            assert_eq!(sort_out, hash_out, "{} hash differs", q.name);
        }
    }

    #[test]
    fn flat_input_queries_agree_including_eager() {
        let mut env = tiny_env();
        let attrs = env.attrs;
        let queries = crate::queries::flat_input_agg_queries(&mut env.fdb.catalog, &attrs);
        env.rdb_sort.catalog = env.fdb.catalog.clone();
        for q in &queries {
            let fdb_out = env
                .fdb
                .run_default(&q.task)
                .unwrap()
                .to_relation()
                .unwrap()
                .canonical();
            let naive = env
                .rdb_sort
                .run(&q.task, PlanMode::Naive)
                .unwrap()
                .canonical();
            let eager = env
                .rdb_sort
                .run(&q.task, PlanMode::Eager)
                .unwrap()
                .canonical();
            assert_eq!(fdb_out, naive, "{} fdb vs naive", q.name);
            assert_eq!(naive, eager, "{} naive vs eager", q.name);
        }
    }

    #[test]
    fn ord_fast_path_detects_stored_order() {
        let mut env = tiny_env();
        let a = env.attrs;
        // R1 is stored in (package, date, item) order.
        let stored = [
            SortKey::asc(a.package),
            SortKey::asc(a.date),
            SortKey::asc(a.item),
        ];
        let n = env.run_rdb_ord("R1", &stored, None);
        assert_eq!(n, env.flat_tuples);
        let n10 = env.run_rdb_ord("R1", &stored, Some(10));
        assert_eq!(n10, 10.min(env.flat_tuples));
    }

    #[test]
    fn view_sizes_reported() {
        let env = tiny_env();
        assert!(env.view_singletons > 0);
        assert!(env.flat_tuples * 5 > env.view_singletons);
        // The arena footprint covers at least the value payloads.
        assert!(
            env.view_bytes >= env.view_singletons * std::mem::size_of::<fdb_relational::Value>()
        );
    }

    #[test]
    fn fo_stats_report_bytes() {
        let mut env = tiny_env();
        let attrs = env.attrs;
        let queries = paper_queries(&mut env.fdb.catalog, &attrs);
        let q1 = &queries[0];
        let stats = env.run_fdb_fo_stats(&q1.task);
        assert!(stats.singletons > 0);
        assert!(stats.bytes > 0);
        assert_eq!(stats.singletons, env.run_fdb_fo(&q1.task));
    }
}
