//! Recursive aggregation on factorised data — §3.2 of the paper.
//!
//! The evaluators run in time linear in the *factorisation* size, even
//! though the represented relation can be exponentially larger: a count
//! over a union is the sum of its entries' counts, over a product the
//! product of the factors' counts. Aggregate singletons carry their special
//! semantics (§3.1): `⟨count(X):c⟩` counts as `c`, `⟨sumA(X):s⟩` sums as
//! `s`; compositions outside Proposition 2 — e.g. a `count` over a `sum`
//! singleton, whose cardinality is unrecoverable — are reported as
//! [`FdbError::InvalidComposition`].
//!
//! The evaluators traverse the arena through [`UnionRef`]/[`EntryRef`]
//! cursors — index chasing over flat tables, no pointer-chasing through
//! heap-allocated nodes.
//!
//! Every evaluator exists in a serial form and a `_par` form that
//! partitions the top union's entries over an [`fdb_exec`] pool. The
//! per-entry contributions are always combined **in entry order**, so
//! the parallel evaluators return bit-identical results to the serial
//! ones for every thread count — including floating-point sums, whose
//! addition order never changes.

use crate::error::{FdbError, Result};
use crate::frep::{EntryRef, UnionRef};
use crate::ftree::{AggLabel, AggOp, FTree, NodeId, NodeLabel};
use fdb_relational::{Number, Value};
use std::collections::BTreeSet;

/// Evaluates `term` for every entry and folds the results in entry
/// order with `combine` — serially for `threads <= 1`, on the pool
/// otherwise. Because the fold order is fixed, both paths return the
/// same value bit for bit.
fn fold_entries<A, T>(
    threads: usize,
    u: UnionRef<'_>,
    init: A,
    term: impl Fn(EntryRef<'_>) -> Result<T> + Sync,
    mut combine: impl FnMut(A, T) -> A,
) -> Result<A>
where
    T: Send,
{
    if threads <= 1 || u.len() < 2 {
        let mut acc = init;
        for e in u.entries() {
            acc = combine(acc, term(e)?);
        }
        return Ok(acc);
    }
    let idx: Vec<usize> = (0..u.len()).collect();
    let terms = fdb_exec::try_parallel_map(threads, idx, |i| term(u.entry(i)))?;
    Ok(terms.into_iter().fold(init, combine))
}

// ---------------------------------------------------------------------
// Leaf slice kernels
// ---------------------------------------------------------------------
// A leaf atomic union is a plain sorted value vector, and freshly built
// arenas lay its values out back-to-back in the node's column
// ([`UnionRef::contiguous_values`]). The aggregates below collapse such
// unions to tight loops over `&[Value]` — branch-predictable scans over
// the columnar buffer the arena layout was chosen for — instead of a
// per-entry cursor walk with a clone and a `Number` dispatch per value.
// Every kernel is bit-identical to the generic fold it replaces:
// integer adds wrap (associative, so the loop shape is free to change),
// and mixed, non-`Int` or non-contiguous buffers fall back to the
// generic path, preserving result and error identity.

/// True when the union is a leaf of the f-tree with an atomic label:
/// entries carry multiplicity 1 and no children, so aggregates over it
/// reduce to scans of the value buffer.
fn is_atomic_leaf(ftree: &FTree, u: UnionRef<'_>) -> bool {
    let node = ftree.node(u.node());
    matches!(node.label, NodeLabel::Atomic(_)) && node.children.is_empty()
}

/// Wrapping sum when every value is an `Int`; `None` otherwise.
fn sum_int_slice(vals: &[Value]) -> Option<i64> {
    if !vals.iter().all(|v| matches!(v, Value::Int(_))) {
        return None;
    }
    let mut acc = 0i64;
    for v in vals {
        if let Value::Int(x) = v {
            acc = acc.wrapping_add(*x);
        }
    }
    Some(acc)
}

/// Min or max when the slice is non-empty and every value is an `Int`;
/// `None` otherwise.
fn extremum_int_slice(vals: &[Value], is_min: bool) -> Option<i64> {
    if vals.is_empty() || !vals.iter().all(|v| matches!(v, Value::Int(_))) {
        return None;
    }
    let mut best = match vals[0] {
        Value::Int(x) => x,
        _ => unreachable!(),
    };
    for v in &vals[1..] {
        if let Value::Int(x) = v {
            best = if is_min { best.min(*x) } else { best.max(*x) };
        }
    }
    Some(best)
}

/// True if the subtree rooted at `node` can feed the aggregation `op`:
/// it exposes the aggregated attribute atomically, or holds a compatible
/// partial-aggregate component (e.g. `sum(a)` feeding a later `sum(a)`).
pub fn subtree_provides(ftree: &FTree, node: NodeId, op: &AggOp) -> bool {
    match op.attr() {
        None => true,
        Some(attr) => ftree
            .subtree_nodes(node)
            .iter()
            .any(|&n| match &ftree.node(n).label {
                NodeLabel::Atomic(attrs) => attrs.contains(&attr),
                NodeLabel::Agg(l) => l.component_of(op).is_some(),
            }),
    }
}

/// Tuple multiplicity of one entry: how many tuples of the represented
/// relation one singleton stands for, *excluding* its children.
fn entry_multiplicity(label: &NodeLabel, value: &Value) -> Result<i64> {
    match label {
        NodeLabel::Atomic(_) => Ok(1),
        NodeLabel::Agg(l) => match l.count_component() {
            Some(i) => Ok(component(l, value, i)
                .as_int()
                .expect("count component is integral")),
            None => Err(FdbError::InvalidComposition(format!(
                "cardinality of an aggregate singleton without a count \
                 component ({:?}) is unrecoverable",
                l.funcs
            ))),
        },
    }
}

/// Reads component `i` of a (possibly composite) aggregate value.
fn component(label: &AggLabel, value: &Value, i: usize) -> Value {
    if label.arity() == 1 {
        value.clone()
    } else {
        value.as_tup().expect("composite aggregate holds a Tup")[i].clone()
    }
}

/// `count(E)` — cardinality of the relation represented by union `u`.
pub fn count_union(ftree: &FTree, u: UnionRef<'_>) -> Result<i64> {
    count_union_par(ftree, u, 1)
}

/// [`count_union`] with the top union's entries partitioned over
/// `threads` workers; identical result for every thread count.
pub fn count_union_par(ftree: &FTree, u: UnionRef<'_>, threads: usize) -> Result<i64> {
    // Leaf atomic union: every entry stands for exactly one tuple, so
    // the count is the entry count — O(1), and the workhorse of the
    // sibling-cardinality products in the recursive evaluators below.
    if is_atomic_leaf(ftree, u) {
        debug_assert!(u.entries().all(|e| e.child_count() == 0));
        return Ok(u.len() as i64);
    }
    let label = &ftree.node(u.node()).label;
    fold_entries(
        threads,
        u,
        0i64,
        |e| {
            let mut prod = entry_multiplicity(label, e.value())?;
            for c in e.children() {
                prod = prod.wrapping_mul(count_union(ftree, c)?);
            }
            Ok(prod)
        },
        i64::wrapping_add,
    )
}

/// `sumA(E)` over union `u`, which must provide `A`.
pub fn sum_union(ftree: &FTree, u: UnionRef<'_>, op: &AggOp) -> Result<Number> {
    sum_union_par(ftree, u, op, 1)
}

/// [`sum_union`] with the top union's entries partitioned over
/// `threads` workers. Per-entry terms are added in entry order, so even
/// float sums match the serial result bit for bit.
pub fn sum_union_par(ftree: &FTree, u: UnionRef<'_>, op: &AggOp, threads: usize) -> Result<Number> {
    let attr = op.attr().expect("sum has an attribute");
    let label = &ftree.node(u.node()).label;
    let node_provides = match label {
        NodeLabel::Atomic(attrs) => attrs.contains(&attr),
        NodeLabel::Agg(l) => l.component_of(op).is_some(),
    };
    if node_provides {
        // Leaf providing union: no child cardinalities scale the
        // values, so an all-`Int` contiguous buffer sums as one slice
        // scan (wrapping adds — identical to the entry-order fold).
        if is_atomic_leaf(ftree, u) {
            if let Some(s) = u.contiguous_values().and_then(sum_int_slice) {
                return Ok(Number::Int(s));
            }
        }
        return fold_entries(
            threads,
            u,
            Number::ZERO,
            |e| {
                let v = match label {
                    NodeLabel::Atomic(_) => e.value().clone(),
                    NodeLabel::Agg(l) => component(l, e.value(), l.component_of(op).unwrap()),
                };
                let n = v.as_number().ok_or_else(|| {
                    FdbError::NonNumeric(format!("sum over non-numeric value {v}"))
                })?;
                let mut mult: i64 = 1;
                for c in e.children() {
                    mult = mult.wrapping_mul(count_union(ftree, c)?);
                }
                Ok(n.mul(Number::Int(mult)))
            },
            Number::add,
        );
    }
    // Exactly one child subtree provides A (attributes partition the
    // schema); the others contribute their cardinalities.
    let children = &ftree.node(u.node()).children;
    let j = children
        .iter()
        .position(|&c| subtree_provides(ftree, c, op))
        .ok_or_else(|| {
            FdbError::InvalidComposition(format!(
                "no subtree provides {op:?}; a prior aggregate hid the attribute"
            ))
        })?;
    fold_entries(
        threads,
        u,
        Number::ZERO,
        |e| {
            let mut mult = entry_multiplicity(label, e.value())?;
            for (k, c) in e.children().enumerate() {
                if k != j {
                    mult = mult.wrapping_mul(count_union(ftree, c)?);
                }
            }
            let s = sum_union(ftree, e.child(j), op)?;
            Ok(s.mul(Number::Int(mult)))
        },
        Number::add,
    )
}

/// `minA(E)` / `maxA(E)` over union `u`, which must provide `A`.
pub fn extremum_union(ftree: &FTree, u: UnionRef<'_>, op: &AggOp) -> Result<Value> {
    extremum_union_par(ftree, u, op, 1)
}

/// [`extremum_union`] with the top union's entries partitioned over
/// `threads` workers; candidates are compared in entry order, so ties
/// resolve exactly as in the serial scan.
pub fn extremum_union_par(
    ftree: &FTree,
    u: UnionRef<'_>,
    op: &AggOp,
    threads: usize,
) -> Result<Value> {
    let is_min = matches!(op, AggOp::Min(_));
    let attr = op.attr().expect("min/max has an attribute");
    let label = &ftree.node(u.node()).label;
    let pick = move |best: Option<Value>, v: Value| -> Option<Value> {
        let better = match &best {
            None => true,
            Some(b) => {
                if is_min {
                    v < *b
                } else {
                    v > *b
                }
            }
        };
        if better {
            Some(v)
        } else {
            best
        }
    };
    let best = match label {
        NodeLabel::Atomic(attrs) if attrs.contains(&attr) => {
            // Entries are sorted ascending: the extremum is at an end.
            if u.is_empty() {
                None
            } else if is_min {
                Some(u.entry(0).value().clone())
            } else {
                Some(u.entry(u.len() - 1).value().clone())
            }
        }
        NodeLabel::Agg(l) if l.component_of(op).is_some() => {
            let i = l.component_of(op).unwrap();
            // Single-component aggregate unions expose the component as
            // the value itself: an all-`Int` contiguous buffer reduces
            // with a slice min/max scan (first-wins ties are moot —
            // equal `Int`s are identical values).
            let fast = if l.arity() == 1 {
                u.contiguous_values()
                    .and_then(|vals| extremum_int_slice(vals, is_min))
                    .map(Value::Int)
            } else {
                None
            };
            match fast {
                Some(v) => Some(v),
                None => fold_entries(threads, u, None, |e| Ok(component(l, e.value(), i)), pick)?,
            }
        }
        _ => {
            let children = &ftree.node(u.node()).children;
            let j = children
                .iter()
                .position(|&c| subtree_provides(ftree, c, op))
                .ok_or_else(|| {
                    FdbError::InvalidComposition(format!(
                        "no subtree provides {op:?}; a prior aggregate hid the attribute"
                    ))
                })?;
            fold_entries(
                threads,
                u,
                None,
                |e| extremum_union(ftree, e.child(j), op),
                pick,
            )?
        }
    };
    best.ok_or_else(|| FdbError::InvalidOperator("extremum of an empty union".into()))
}

/// Finds the child subtree of `u`'s node that provides `op`, mirroring
/// the lookup in [`sum_union_par`].
fn providing_child(ftree: &FTree, u: UnionRef<'_>, op: &AggOp) -> Result<usize> {
    ftree
        .node(u.node())
        .children
        .iter()
        .position(|&c| subtree_provides(ftree, c, op))
        .ok_or_else(|| {
            FdbError::InvalidComposition(format!(
                "no subtree provides {op:?}; a prior aggregate hid the attribute"
            ))
        })
}

/// `productA(E)` over union `u`, which must provide `A`: the product of
/// `A`'s non-NULL values under bag semantics. Returns `None` when every
/// input is NULL. The factorised recursion exponentiates by sibling
/// cardinalities (`product^count`), which for wrapping integer
/// arithmetic is congruent mod 2^64 with the flat sequential product.
pub fn product_union(ftree: &FTree, u: UnionRef<'_>, op: &AggOp) -> Result<Option<Number>> {
    product_union_par(ftree, u, op, 1)
}

/// [`product_union`] with the top union's entries partitioned over
/// `threads` workers; per-entry factors multiply in entry order, so even
/// float products match the serial result bit for bit.
pub fn product_union_par(
    ftree: &FTree,
    u: UnionRef<'_>,
    op: &AggOp,
    threads: usize,
) -> Result<Option<Number>> {
    let attr = op.attr().expect("product has an attribute");
    let label = &ftree.node(u.node()).label;
    let mul = |acc: Option<Number>, t: Option<Number>| match (acc, t) {
        (Some(a), Some(b)) => Some(a.mul(b)),
        (a, b) => a.or(b),
    };
    let node_provides = match label {
        NodeLabel::Atomic(attrs) => attrs.contains(&attr),
        NodeLabel::Agg(l) => l.component_of(op).is_some(),
    };
    if node_provides {
        return fold_entries(
            threads,
            u,
            None,
            |e| {
                let v = match label {
                    NodeLabel::Atomic(_) => e.value().clone(),
                    NodeLabel::Agg(l) => component(l, e.value(), l.component_of(op).unwrap()),
                };
                if v.is_null() {
                    return Ok(None);
                }
                let n = v.as_number().ok_or_else(|| {
                    FdbError::NonNumeric(format!("product over non-numeric value {v}"))
                })?;
                // A partial-product singleton already condensed its own
                // tuples (mirrors `sum_union_par`): only sibling-child
                // cardinalities exponentiate it.
                let mut mult: i64 = 1;
                for c in e.children() {
                    mult = mult.wrapping_mul(count_union(ftree, c)?);
                }
                Ok(Some(n.pow(mult.max(0) as u64)))
            },
            mul,
        );
    }
    let j = providing_child(ftree, u, op)?;
    fold_entries(
        threads,
        u,
        None,
        |e| {
            let mut mult = entry_multiplicity(label, e.value())?;
            for (k, c) in e.children().enumerate() {
                if k != j {
                    mult = mult.wrapping_mul(count_union(ftree, c)?);
                }
            }
            let p = product_union(ftree, e.child(j), op)?;
            Ok(p.map(|n| n.pow(mult.max(0) as u64)))
        },
        mul,
    )
}

/// The set of distinct non-NULL values of `op`'s attribute in the
/// relation represented by `u` — the distinct-count walk. Each distinct
/// value is touched once per union that mentions it, regardless of how
/// many tuples share it, so the walk runs in factorisation size.
///
/// The attribute must still be *atomic* in the tree: distinct values
/// cannot be recovered from aggregate singletons.
pub fn distinct_values(
    ftree: &FTree,
    u: UnionRef<'_>,
    op: &AggOp,
    threads: usize,
) -> Result<BTreeSet<Value>> {
    let attr = op.attr().expect("count(distinct) has an attribute");
    let label = &ftree.node(u.node()).label;
    match label {
        NodeLabel::Atomic(attrs) if attrs.contains(&attr) => {
            // Every entry stands for at least one tuple (unions are never
            // empty), so the distinct values are the entry values.
            fold_entries(
                threads,
                u,
                BTreeSet::new(),
                |e| Ok((!e.value().is_null()).then(|| e.value().clone())),
                |mut set, v| {
                    if let Some(v) = v {
                        set.insert(v);
                    }
                    set
                },
            )
        }
        NodeLabel::Agg(l) if l.component_of(op).is_some() => Err(FdbError::InvalidComposition(
            format!("distinct values of {op:?} are unrecoverable from an aggregate singleton"),
        )),
        _ => {
            let j = providing_child(ftree, u, op)?;
            fold_entries(
                threads,
                u,
                BTreeSet::new(),
                |e| distinct_values(ftree, e.child(j), op, 1),
                |mut acc, set| {
                    acc.extend(set);
                    acc
                },
            )
        }
    }
}

/// `existsA(E)` / `forallA(E)` over union `u`: whether some (resp.
/// every) non-NULL value of `A` satisfies `value θ c`. Both are
/// multiplicity-invariant, so sibling cardinalities never matter — the
/// walk only descends the providing spine, like `min`/`max`.
pub fn boolean_union(ftree: &FTree, u: UnionRef<'_>, op: &AggOp) -> Result<bool> {
    boolean_union_par(ftree, u, op, 1)
}

/// [`boolean_union`] with the top union's entries partitioned over
/// `threads` workers.
pub fn boolean_union_par(
    ftree: &FTree,
    u: UnionRef<'_>,
    op: &AggOp,
    threads: usize,
) -> Result<bool> {
    let (attr, cmp, rhs, is_exists) = match *op {
        AggOp::Exists(a, c, r) => (a, c, r, true),
        AggOp::Forall(a, c, r) => (a, c, r, false),
        _ => unreachable!("boolean_union is only called for exists/forall"),
    };
    // exists folds with OR from false; forall with AND from true.
    let combine = move |acc: bool, t: bool| if is_exists { acc || t } else { acc && t };
    let label = &ftree.node(u.node()).label;
    match label {
        NodeLabel::Atomic(attrs) if attrs.contains(&attr) => fold_entries(
            threads,
            u,
            !is_exists,
            |e| {
                let v = e.value();
                // NULL inputs are skipped: they contribute the identity.
                if v.is_null() {
                    Ok(!is_exists)
                } else {
                    Ok(cmp.eval(v.cmp(&Value::Int(rhs))))
                }
            },
            combine,
        ),
        NodeLabel::Agg(l) if l.component_of(op).is_some() => {
            // The component already holds the sub-result (0/1) for the
            // erased subtree; combine across entries.
            let i = l.component_of(op).unwrap();
            fold_entries(
                threads,
                u,
                !is_exists,
                |e| {
                    Ok(component(l, e.value(), i)
                        .as_int()
                        .expect("boolean aggregate component is 0/1")
                        != 0)
                },
                combine,
            )
        }
        _ => {
            let j = providing_child(ftree, u, op)?;
            fold_entries(
                threads,
                u,
                !is_exists,
                |e| boolean_union(ftree, e.child(j), op),
                combine,
            )
        }
    }
}

/// Merges two descending top-`k` lists into one, keeping at most `k`.
fn merge_topk(a: Vec<Value>, b: Vec<Value>, k: usize) -> Vec<Value> {
    let mut out = Vec::with_capacity((a.len() + b.len()).min(k));
    let (mut ia, mut ib) = (0, 0);
    while out.len() < k && (ia < a.len() || ib < b.len()) {
        let take_a = match (a.get(ia), b.get(ib)) {
            (Some(x), Some(y)) => x >= y,
            (Some(_), None) => true,
            _ => false,
        };
        if take_a {
            out.push(a[ia].clone());
            ia += 1;
        } else {
            out.push(b[ib].clone());
            ib += 1;
        }
    }
    out
}

/// Pushes `v` repeated `mult` times (capped at the remaining budget)
/// onto a descending list that still has room for `k` values total.
fn push_repeated(out: &mut Vec<Value>, v: Value, mult: i64, k: usize) {
    let n = (mult.max(0) as usize).min(k.saturating_sub(out.len()));
    for _ in 0..n {
        out.push(v.clone());
    }
}

/// The `k` largest non-NULL values of `op`'s attribute in the relation
/// represented by `u`, descending, under bag semantics: a value shared
/// by `m` tuples occurs `min(m, k)` times. One bounded heap-equivalent
/// list per union entry, merged in entry order (§ PR-5 top-k).
pub fn topk_union(ftree: &FTree, u: UnionRef<'_>, op: &AggOp) -> Result<Vec<Value>> {
    topk_union_par(ftree, u, op, 1)
}

/// [`topk_union`] with the top union's entries partitioned over
/// `threads` workers; identical result for every thread count (merging
/// sorted lists is order-insensitive on multisets).
pub fn topk_union_par(
    ftree: &FTree,
    u: UnionRef<'_>,
    op: &AggOp,
    threads: usize,
) -> Result<Vec<Value>> {
    let (attr, k) = match *op {
        AggOp::TopK(a, k) => (a, k),
        _ => unreachable!("topk_union is only called for top_k"),
    };
    if k == 0 {
        return Ok(Vec::new());
    }
    let label = &ftree.node(u.node()).label;
    match label {
        NodeLabel::Atomic(attrs) if attrs.contains(&attr) => {
            // Entries are sorted ascending; walk them backwards so the
            // largest values fill the budget first. (Serial walk: the
            // reverse scan stops after at most k distinct entries.)
            let mut out = Vec::with_capacity(k);
            for i in (0..u.len()).rev() {
                if out.len() >= k {
                    break;
                }
                let e = u.entry(i);
                let v = e.value();
                if v.is_null() {
                    continue;
                }
                let mut mult: i64 = 1;
                for c in e.children() {
                    mult = mult.wrapping_mul(count_union(ftree, c)?);
                }
                push_repeated(&mut out, v.clone(), mult, k);
            }
            Ok(out)
        }
        NodeLabel::Agg(l) if l.component_of(op).is_some() => {
            let i = l.component_of(op).unwrap();
            fold_entries(
                threads,
                u,
                Vec::new(),
                |e| {
                    let part = component(l, e.value(), i);
                    let mut mult: i64 = 1;
                    for c in e.children() {
                        mult = mult.wrapping_mul(count_union(ftree, c)?);
                    }
                    let mut out = Vec::new();
                    match part {
                        Value::Null => {}
                        Value::Tup(vals) => {
                            for v in vals.iter() {
                                if out.len() >= k {
                                    break;
                                }
                                push_repeated(&mut out, v.clone(), mult, k);
                            }
                        }
                        v => push_repeated(&mut out, v, mult, k),
                    }
                    Ok(out)
                },
                |acc, part| merge_topk(acc, part, k),
            )
        }
        _ => {
            let j = providing_child(ftree, u, op)?;
            fold_entries(
                threads,
                u,
                Vec::new(),
                |e| {
                    let mut mult = entry_multiplicity(label, e.value())?;
                    for (c_idx, c) in e.children().enumerate() {
                        if c_idx != j {
                            mult = mult.wrapping_mul(count_union(ftree, c)?);
                        }
                    }
                    let sub = topk_union(ftree, e.child(j), op)?;
                    let mut out = Vec::with_capacity(k);
                    for v in sub {
                        if out.len() >= k {
                            break;
                        }
                        push_repeated(&mut out, v, mult, k);
                    }
                    Ok(out)
                },
                |acc, part| merge_topk(acc, part, k),
            )
        }
    }
}

/// Evaluates one aggregation function over a *product* of sibling unions
/// (the expression an aggregation operator replaces, §3.2).
pub fn eval_op(ftree: &FTree, unions: &[UnionRef<'_>], op: &AggOp) -> Result<Value> {
    eval_op_par(ftree, unions, op, 1)
}

/// [`eval_op`] with the recursive evaluators parallelised over the top
/// unions' entries on `threads` workers; identical result for every
/// thread count.
pub fn eval_op_par(
    ftree: &FTree,
    unions: &[UnionRef<'_>],
    op: &AggOp,
    threads: usize,
) -> Result<Value> {
    match op {
        AggOp::Count => {
            let mut prod: i64 = 1;
            for &u in unions {
                prod = prod.wrapping_mul(count_union_par(ftree, u, threads)?);
            }
            Ok(Value::Int(prod))
        }
        AggOp::Sum(_) => {
            let j = unions
                .iter()
                .position(|u| subtree_provides(ftree, u.node(), op))
                .ok_or_else(|| {
                    FdbError::InvalidComposition(format!("no factor provides {op:?}"))
                })?;
            let mut total = sum_union_par(ftree, unions[j], op, threads)?;
            for (k, &u) in unions.iter().enumerate() {
                if k != j {
                    total = total.mul(Number::Int(count_union_par(ftree, u, threads)?));
                }
            }
            Ok(total.into_value())
        }
        AggOp::Min(_) | AggOp::Max(_) => {
            let j = unions
                .iter()
                .position(|u| subtree_provides(ftree, u.node(), op))
                .ok_or_else(|| {
                    FdbError::InvalidComposition(format!("no factor provides {op:?}"))
                })?;
            extremum_union_par(ftree, unions[j], op, threads)
        }
        AggOp::CountDistinct(_) => {
            // Multiplicity-invariant: the non-providing factors only
            // repeat tuples, never change which values occur.
            let j = find_provider(ftree, unions, op)?;
            let set = distinct_values(ftree, unions[j], op, threads)?;
            Ok(Value::Int(set.len() as i64))
        }
        AggOp::Product(_) => {
            let j = find_provider(ftree, unions, op)?;
            let mut mult: i64 = 1;
            for (k, &u) in unions.iter().enumerate() {
                if k != j {
                    mult = mult.wrapping_mul(count_union_par(ftree, u, threads)?);
                }
            }
            Ok(match product_union_par(ftree, unions[j], op, threads)? {
                Some(p) => p.pow(mult.max(0) as u64).into_value(),
                None => Value::Null,
            })
        }
        AggOp::Exists(..) | AggOp::Forall(..) => {
            let j = find_provider(ftree, unions, op)?;
            Ok(Value::Int(
                boolean_union_par(ftree, unions[j], op, threads)? as i64,
            ))
        }
        AggOp::TopK(_, k) => {
            let j = find_provider(ftree, unions, op)?;
            let mut mult: i64 = 1;
            for (i, &u) in unions.iter().enumerate() {
                if i != j {
                    mult = mult.wrapping_mul(count_union_par(ftree, u, threads)?);
                }
            }
            let partial = topk_union_par(ftree, unions[j], op, threads)?;
            let mut out = Vec::with_capacity(*k);
            for v in partial {
                if out.len() >= *k {
                    break;
                }
                push_repeated(&mut out, v, mult, *k);
            }
            Ok(if out.is_empty() {
                Value::Null
            } else {
                Value::tup(out)
            })
        }
    }
}

/// Index of the factor union providing `op`'s attribute.
fn find_provider(ftree: &FTree, unions: &[UnionRef<'_>], op: &AggOp) -> Result<usize> {
    unions
        .iter()
        .position(|u| subtree_provides(ftree, u.node(), op))
        .ok_or_else(|| FdbError::InvalidComposition(format!("no factor provides {op:?}")))
}

/// Evaluates a composite function `(F1,…,Fk)` over a product of unions,
/// returning a scalar when `k = 1` and a `Tup` otherwise (§3.2.4).
pub fn eval_funcs(ftree: &FTree, unions: &[UnionRef<'_>], funcs: &[AggOp]) -> Result<Value> {
    eval_funcs_par(ftree, unions, funcs, 1)
}

/// [`eval_funcs`] on `threads` workers (see [`eval_op_par`]).
pub fn eval_funcs_par(
    ftree: &FTree,
    unions: &[UnionRef<'_>],
    funcs: &[AggOp],
    threads: usize,
) -> Result<Value> {
    let mut vals = Vec::with_capacity(funcs.len());
    for f in funcs {
        vals.push(eval_op_par(ftree, unions, f, threads)?);
    }
    Ok(if vals.len() == 1 {
        vals.pop().unwrap()
    } else {
        Value::tup(vals)
    })
}

/// Derives the *partial* aggregation functions for `γ` over `targets` when
/// the query's final functions are `final_funcs` (Prop. 2): `sumA`
/// decomposes into `sumA` where `A` is available and `count` elsewhere;
/// `count` into `count`s; `min`/`max` into `min`/`max` where available and
/// `count` elsewhere (the counts are ignored by the final extremum but keep
/// the factorisation reducible). Duplicates are evaluated once (§3.2.4).
pub fn partial_funcs(ftree: &FTree, targets: &[NodeId], final_funcs: &[AggOp]) -> Vec<AggOp> {
    let mut out: Vec<AggOp> = Vec::new();
    for f in final_funcs {
        let partial = match f {
            AggOp::Count => AggOp::Count,
            AggOp::Sum(_)
            | AggOp::Min(_)
            | AggOp::Max(_)
            | AggOp::Product(_)
            | AggOp::Exists(..)
            | AggOp::Forall(..)
            | AggOp::CountDistinct(_)
            | AggOp::TopK(..) => {
                if targets.iter().any(|&t| subtree_provides(ftree, t, f)) {
                    *f
                } else {
                    AggOp::Count
                }
            }
        };
        if !out.contains(&partial) {
            out.push(partial);
        }
    }
    out
}

/// Combines the values of several partial-aggregate leaves into the final
/// aggregate for one group (the enumeration-time combination of §5: "the
/// value of the final aggregate is the product (or min or max) of these
/// values").
pub fn combine_partials(final_op: &AggOp, leaves: &[(&AggLabel, &Value)]) -> Result<Value> {
    match final_op {
        AggOp::Count => {
            let mut prod: i64 = 1;
            for (l, v) in leaves {
                let i = l.count_component().ok_or_else(|| {
                    FdbError::InvalidComposition(
                        "count combination needs a count component in every leaf".into(),
                    )
                })?;
                prod = prod.wrapping_mul(component(l, v, i).as_int().expect("integral count"));
            }
            Ok(Value::Int(prod))
        }
        AggOp::Sum(_) => {
            let mut total: Option<Number> = None;
            let mut mult: i64 = 1;
            for (l, v) in leaves {
                if let Some(i) = l.component_of(final_op) {
                    let n = component(l, v, i)
                        .as_number()
                        .ok_or_else(|| FdbError::NonNumeric("sum component".into()))?;
                    if total.is_some() {
                        return Err(FdbError::InvalidComposition(
                            "two leaves carry the same sum component".into(),
                        ));
                    }
                    total = Some(n);
                } else {
                    let i = l.count_component().ok_or_else(|| {
                        FdbError::InvalidComposition(
                            "sum combination needs counts in the other leaves".into(),
                        )
                    })?;
                    mult = mult.wrapping_mul(component(l, v, i).as_int().expect("integral count"));
                }
            }
            let total = total.ok_or_else(|| {
                FdbError::InvalidComposition("no leaf carries the sum component".into())
            })?;
            Ok(total.mul(Number::Int(mult)).into_value())
        }
        AggOp::Min(_) | AggOp::Max(_) => {
            for (l, v) in leaves {
                if let Some(i) = l.component_of(final_op) {
                    return Ok(component(l, v, i));
                }
            }
            Err(FdbError::InvalidComposition(
                "no leaf carries the extremum component".into(),
            ))
        }
        // Multiplicity-invariant: the one leaf carrying the component IS
        // the answer; other leaves only repeat tuples.
        AggOp::CountDistinct(_) | AggOp::Exists(..) | AggOp::Forall(..) => {
            for (l, v) in leaves {
                if let Some(i) = l.component_of(final_op) {
                    return Ok(component(l, v, i));
                }
            }
            Err(FdbError::InvalidComposition(format!(
                "no leaf carries the {final_op:?} component"
            )))
        }
        AggOp::Product(_) => {
            // partial_product ^ (product of the other leaves' counts).
            let mut partial: Option<Value> = None;
            let mut mult: i64 = 1;
            for (l, v) in leaves {
                if let Some(i) = l.component_of(final_op) {
                    if partial.is_some() {
                        return Err(FdbError::InvalidComposition(
                            "two leaves carry the same product component".into(),
                        ));
                    }
                    partial = Some(component(l, v, i));
                } else {
                    let i = l.count_component().ok_or_else(|| {
                        FdbError::InvalidComposition(
                            "product combination needs counts in the other leaves".into(),
                        )
                    })?;
                    mult = mult.wrapping_mul(component(l, v, i).as_int().expect("integral count"));
                }
            }
            let partial = partial.ok_or_else(|| {
                FdbError::InvalidComposition("no leaf carries the product component".into())
            })?;
            if partial.is_null() {
                return Ok(Value::Null);
            }
            let n = partial
                .as_number()
                .ok_or_else(|| FdbError::NonNumeric("product component".into()))?;
            Ok(n.pow(mult.max(0) as u64).into_value())
        }
        AggOp::TopK(_, k) => {
            // Each partial top-k value is repeated by the other leaves'
            // tuple multiplicities, then the combined list re-truncates.
            let mut partial: Option<Value> = None;
            let mut mult: i64 = 1;
            for (l, v) in leaves {
                if let Some(i) = l.component_of(final_op) {
                    if partial.is_some() {
                        return Err(FdbError::InvalidComposition(
                            "two leaves carry the same top-k component".into(),
                        ));
                    }
                    partial = Some(component(l, v, i));
                } else {
                    let i = l.count_component().ok_or_else(|| {
                        FdbError::InvalidComposition(
                            "top-k combination needs counts in the other leaves".into(),
                        )
                    })?;
                    mult = mult.wrapping_mul(component(l, v, i).as_int().expect("integral count"));
                }
            }
            let partial = partial.ok_or_else(|| {
                FdbError::InvalidComposition("no leaf carries the top-k component".into())
            })?;
            let mut out = Vec::with_capacity(*k);
            match partial {
                Value::Null => {}
                Value::Tup(vals) => {
                    for v in vals.iter() {
                        if out.len() >= *k {
                            break;
                        }
                        push_repeated(&mut out, v.clone(), mult, *k);
                    }
                }
                v => push_repeated(&mut out, v, mult, *k),
            }
            Ok(if out.is_empty() {
                Value::Null
            } else {
                Value::tup(out)
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frep::FRep;
    use fdb_relational::{Catalog, CmpOp, Relation, Schema};

    /// The Items relation of Figure 1 as a path factorisation.
    fn items_rep() -> (Catalog, FRep) {
        let mut c = Catalog::new();
        let item = c.intern("item");
        let price = c.intern("price");
        let rel = Relation::from_rows(
            Schema::new(vec![item, price]),
            [("base", 6), ("ham", 1), ("mushrooms", 1), ("pineapple", 2)]
                .into_iter()
                .map(|(i, p)| vec![Value::str(i), Value::Int(p)]),
        );
        let rep = FRep::from_relation(&rel, FTree::path(&[item, price])).unwrap();
        (c, rep)
    }

    #[test]
    fn count_over_trie() {
        let (_, rep) = items_rep();
        let n = count_union(rep.ftree(), rep.root(0)).unwrap();
        assert_eq!(n, 4);
    }

    #[test]
    fn sum_over_trie() {
        let (c, rep) = items_rep();
        let price = c.lookup("price").unwrap();
        let s = sum_union(rep.ftree(), rep.root(0), &AggOp::Sum(price)).unwrap();
        assert_eq!(s.into_value(), Value::Int(10));
    }

    #[test]
    fn min_max_over_trie() {
        let (c, rep) = items_rep();
        let price = c.lookup("price").unwrap();
        let mn = extremum_union(rep.ftree(), rep.root(0), &AggOp::Min(price)).unwrap();
        let mx = extremum_union(rep.ftree(), rep.root(0), &AggOp::Max(price)).unwrap();
        assert_eq!(mn, Value::Int(1));
        assert_eq!(mx, Value::Int(6));
    }

    #[test]
    fn product_distinct_boolean_topk_over_trie() {
        // Prices: 6, 1, 1, 2.
        let (c, rep) = items_rep();
        let price = c.lookup("price").unwrap();
        let t = rep.ftree();
        let unions = [rep.root(0)];
        assert_eq!(
            eval_op(t, &unions, &AggOp::Product(price)).unwrap(),
            Value::Int(12)
        );
        assert_eq!(
            eval_op(t, &unions, &AggOp::CountDistinct(price)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            eval_op(t, &unions, &AggOp::Exists(price, CmpOp::Gt, 5)).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            eval_op(t, &unions, &AggOp::Exists(price, CmpOp::Gt, 6)).unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            eval_op(t, &unions, &AggOp::Forall(price, CmpOp::Le, 6)).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            eval_op(t, &unions, &AggOp::Forall(price, CmpOp::Lt, 6)).unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            eval_op(t, &unions, &AggOp::TopK(price, 3)).unwrap(),
            Value::tup(vec![Value::Int(6), Value::Int(2), Value::Int(1)])
        );
        // k larger than the relation: everything, still descending.
        assert_eq!(
            eval_op(t, &unions, &AggOp::TopK(price, 10)).unwrap(),
            Value::tup(vec![
                Value::Int(6),
                Value::Int(2),
                Value::Int(1),
                Value::Int(1)
            ])
        );
    }

    #[test]
    fn new_ops_exponentiate_over_products() {
        // (A ∪ A) × (B: 1,2,3): every B value occurs twice in the bag.
        let mut c = Catalog::new();
        let a = c.intern("A");
        let b = c.intern("B");
        let rel = Relation::from_rows(
            Schema::new(vec![a, b]),
            (1..=2).flat_map(|x| (1..=3).map(move |y| vec![Value::Int(x), Value::Int(y)])),
        );
        let mut t = FTree::new();
        t.add_node(NodeLabel::Atomic(vec![a]), None);
        t.add_node(NodeLabel::Atomic(vec![b]), None);
        let rep = FRep::from_relation(&rel, t).unwrap();
        let unions: Vec<UnionRef<'_>> = rep.root_unions().collect();
        // product(B) = (1·2·3)^2 = 36 — pow by the A factor's count.
        assert_eq!(
            eval_op(rep.ftree(), &unions, &AggOp::Product(b)).unwrap(),
            Value::Int(36)
        );
        // count(distinct B) ignores the A factor entirely.
        assert_eq!(
            eval_op(rep.ftree(), &unions, &AggOp::CountDistinct(b)).unwrap(),
            Value::Int(3)
        );
        // top_k(B, 4) repeats each value |A| = 2 times: 3,3,2,2.
        assert_eq!(
            eval_op(rep.ftree(), &unions, &AggOp::TopK(b, 4)).unwrap(),
            Value::tup(vec![
                Value::Int(3),
                Value::Int(3),
                Value::Int(2),
                Value::Int(2)
            ])
        );
        assert_eq!(
            eval_op(rep.ftree(), &unions, &AggOp::Exists(b, CmpOp::Eq, 3)).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            eval_op(rep.ftree(), &unions, &AggOp::Forall(b, CmpOp::Ne, 2)).unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn parallel_evaluators_match_serial_bit_for_bit() {
        // Mixed int/float prices: the in-entry-order fold must keep even
        // the float addition sequence identical to the serial scan.
        let mut c = Catalog::new();
        let item = c.intern("item");
        let price = c.intern("price");
        let rel = Relation::from_rows(
            Schema::new(vec![item, price]),
            (0..40).map(|i| {
                let p = if i % 3 == 0 {
                    Value::Float(0.1 * i as f64)
                } else {
                    Value::Int(i)
                };
                vec![Value::Int(i), p]
            }),
        );
        let rep = FRep::from_relation(&rel, FTree::path(&[item, price])).unwrap();
        let u = rep.root(0);
        let t = rep.ftree();
        for threads in [2, 3, 4, 8] {
            assert_eq!(
                count_union_par(t, u, threads).unwrap(),
                count_union(t, u).unwrap()
            );
            for op in [
                AggOp::Sum(price),
                AggOp::Min(price),
                AggOp::Max(price),
                AggOp::CountDistinct(price),
                AggOp::Exists(price, CmpOp::Gt, 20),
                AggOp::Forall(price, CmpOp::Ge, 0),
                AggOp::TopK(price, 5),
            ] {
                let unions = [u];
                assert_eq!(
                    eval_op_par(t, &unions, &op, threads).unwrap(),
                    eval_op(t, &unions, &op).unwrap(),
                    "op={op:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn count_of_product_multiplies() {
        // (A ∪ A) × (B ∪ B ∪ B): 2 × 3 = 6 (Example 3's factorisation E2).
        let mut c = Catalog::new();
        let a = c.intern("A");
        let b = c.intern("B");
        let rel = Relation::from_rows(
            Schema::new(vec![a, b]),
            (1..=2).flat_map(|x| (1..=3).map(move |y| vec![Value::Int(x), Value::Int(y)])),
        );
        let mut t = FTree::new();
        t.add_node(NodeLabel::Atomic(vec![a]), None);
        t.add_node(NodeLabel::Atomic(vec![b]), None);
        let rep = FRep::from_relation(&rel, t).unwrap();
        let unions: Vec<UnionRef<'_>> = rep.root_unions().collect();
        assert_eq!(
            eval_op(rep.ftree(), &unions, &AggOp::Count).unwrap(),
            Value::Int(6)
        );
        // Σ B over the product: (1+2+3) × |A| = 12.
        assert_eq!(
            eval_op(rep.ftree(), &unions, &AggOp::Sum(b)).unwrap(),
            Value::Int(12)
        );
        // min A ignores the B factor entirely.
        assert_eq!(
            eval_op(rep.ftree(), &unions, &AggOp::Min(a)).unwrap(),
            Value::Int(1)
        );
    }

    /// Builds the Example 8 factorisation over T4 by hand:
    /// customer → pizza → {count(date), sum(price)(item,price)}.
    fn example8() -> (Catalog, FRep) {
        use crate::frep::{Entry, Union};
        let mut c = Catalog::new();
        let customer = c.intern("customer");
        let pizza = c.intern("pizza");
        let date = c.intern("date");
        let item = c.intern("item");
        let price = c.intern("price");
        let cnt_out = c.intern("countdate");
        let sum_out = c.intern("sumprice");
        let mut t = FTree::new();
        let n_cust = t.add_node(NodeLabel::Atomic(vec![customer]), None);
        let n_pizza = t.add_node(NodeLabel::Atomic(vec![pizza]), Some(n_cust));
        let n_cnt = t.add_node(
            NodeLabel::Agg(AggLabel {
                funcs: vec![AggOp::Count],
                over: [date].into_iter().collect(),
                outputs: vec![cnt_out],
            }),
            Some(n_pizza),
        );
        let n_sum = t.add_node(
            NodeLabel::Agg(AggLabel {
                funcs: vec![AggOp::Sum(price)],
                over: [item, price].into_iter().collect(),
                outputs: vec![sum_out],
            }),
            Some(n_pizza),
        );
        let leaf = |node: NodeId, v: i64| Union {
            node,
            entries: vec![Entry {
                value: Value::Int(v),
                children: vec![],
            }],
        };
        let pizza_entry = |name: &str, cnt: i64, sum: i64| Entry {
            value: Value::str(name),
            children: vec![leaf(n_cnt, cnt), leaf(n_sum, sum)],
        };
        let cust_entry = |name: &str, pizzas: Vec<Entry>| Entry {
            value: Value::str(name),
            children: vec![Union {
                node: n_pizza,
                entries: pizzas,
            }],
        };
        let root = Union {
            node: n_cust,
            entries: vec![
                cust_entry("Lucia", vec![pizza_entry("Hawaii", 1, 9)]),
                cust_entry(
                    "Mario",
                    vec![
                        pizza_entry("Capricciosa", 2, 8),
                        pizza_entry("Margherita", 1, 6),
                    ],
                ),
                cust_entry("Pietro", vec![pizza_entry("Hawaii", 1, 9)]),
            ],
        };
        let rep = FRep::new(t, vec![root]).unwrap();
        (c, rep)
    }

    #[test]
    fn example8_sum_price_per_customer() {
        // γ_{sumprice(U)} with U the subtree rooted at pizza: Lucia 9,
        // Mario 2·8 + 1·6 = 22, Pietro 9 (the paper's Example 8).
        let (c, rep) = example8();
        let price = c.lookup("price").unwrap();
        let op = AggOp::Sum(price);
        let root = rep.root(0);
        let per_customer: Vec<(String, Value)> = root
            .entries()
            .map(|e| {
                let unions: Vec<UnionRef<'_>> = e.children().collect();
                (
                    e.value().as_str().unwrap().to_string(),
                    eval_op(rep.ftree(), &unions, &op).unwrap(),
                )
            })
            .collect();
        assert_eq!(
            per_customer,
            vec![
                ("Lucia".to_string(), Value::Int(9)),
                ("Mario".to_string(), Value::Int(22)),
                ("Pietro".to_string(), Value::Int(9)),
            ]
        );
    }

    #[test]
    fn example6_count_reinterprets_aggregate_singletons() {
        // count over {Margherita×⟨count:1⟩ ∪ Capricciosa×⟨count:3⟩ ∪
        // Hawaii×⟨count:3⟩} must be 7, not 3 (Example 6).
        use crate::frep::{Entry, Union};
        let mut c = Catalog::new();
        let pizza = c.intern("pizza");
        let item = c.intern("item");
        let cnt_out = c.intern("count(item)");
        let mut t = FTree::new();
        let n_pizza = t.add_node(NodeLabel::Atomic(vec![pizza]), None);
        let n_cnt = t.add_node(
            NodeLabel::Agg(AggLabel {
                funcs: vec![AggOp::Count],
                over: [item].into_iter().collect(),
                outputs: vec![cnt_out],
            }),
            Some(n_pizza),
        );
        let entry = |name: &str, n: i64| Entry {
            value: Value::str(name),
            children: vec![Union {
                node: n_cnt,
                entries: vec![Entry {
                    value: Value::Int(n),
                    children: vec![],
                }],
            }],
        };
        let root = Union {
            node: n_pizza,
            entries: vec![
                entry("Capricciosa", 3),
                entry("Hawaii", 3),
                entry("Margherita", 1),
            ],
        };
        let rep = FRep::new(t.clone(), vec![root]).unwrap();
        assert_eq!(count_union(&t, rep.root(0)).unwrap(), 7);
    }

    #[test]
    fn count_over_sum_singleton_is_invalid() {
        let (c, rep) = example8();
        // Counting the subtree that contains the sum-only aggregate leaf
        // is fine here because the count(date) leaf provides multiplicity;
        // but counting the sum leaf alone must fail.
        let _ = c;
        let sum_leaf = rep.root(0).entry(0).child(0).entry(0).child(1);
        let err = count_union(rep.ftree(), sum_leaf);
        assert!(matches!(err, Err(FdbError::InvalidComposition(_))));
    }

    #[test]
    fn composite_functions_share_evaluation() {
        let (c, rep) = items_rep();
        let price = c.lookup("price").unwrap();
        let unions: Vec<UnionRef<'_>> = rep.root_unions().collect();
        let v = eval_funcs(rep.ftree(), &unions, &[AggOp::Sum(price), AggOp::Count]).unwrap();
        assert_eq!(v, Value::tup(vec![Value::Int(10), Value::Int(4)]));
    }

    #[test]
    fn partial_funcs_follow_prop2() {
        let (c, rep) = items_rep();
        let price = c.lookup("price").unwrap();
        let root = rep.ftree().roots()[0];
        // Aggregating the item subtree for a final sum(price): the subtree
        // provides price, so the partial is sum(price).
        assert_eq!(
            partial_funcs(rep.ftree(), &[root], &[AggOp::Sum(price)]),
            vec![AggOp::Sum(price)]
        );
        // For a subtree that does not provide the attribute, the partial
        // degrades to count.
        let other = AttrIdOutside::attr();
        assert_eq!(
            partial_funcs(rep.ftree(), &[root], &[AggOp::Sum(other)]),
            vec![AggOp::Count]
        );
        // avg = (sum, count): count deduplicates.
        assert_eq!(
            partial_funcs(rep.ftree(), &[root], &[AggOp::Sum(other), AggOp::Count]),
            vec![AggOp::Count]
        );
    }

    struct AttrIdOutside;
    impl AttrIdOutside {
        fn attr() -> fdb_relational::AttrId {
            fdb_relational::AttrId(999)
        }
    }

    #[test]
    fn combine_partials_products_and_extrema() {
        let price = fdb_relational::AttrId(1);
        let sum_label = AggLabel {
            funcs: vec![AggOp::Sum(price)],
            over: [price].into_iter().collect(),
            outputs: vec![fdb_relational::AttrId(10)],
        };
        let cnt_label = AggLabel {
            funcs: vec![AggOp::Count],
            over: [fdb_relational::AttrId(0)].into_iter().collect(),
            outputs: vec![fdb_relational::AttrId(11)],
        };
        let s = Value::Int(8);
        let n = Value::Int(2);
        // sum × count = 16 (revenue for Mario's Capricciosa, Example 1).
        let combined =
            combine_partials(&AggOp::Sum(price), &[(&sum_label, &s), (&cnt_label, &n)]).unwrap();
        assert_eq!(combined, Value::Int(16));
        // count over both leaves requires both to carry counts.
        assert!(combine_partials(&AggOp::Count, &[(&sum_label, &s)]).is_err());
        assert_eq!(
            combine_partials(&AggOp::Count, &[(&cnt_label, &n)]).unwrap(),
            Value::Int(2)
        );
    }
}
