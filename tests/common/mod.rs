#![allow(dead_code)] // helpers are shared across test binaries that each use a subset

//! Shared helpers for the integration tests: paired engine setup and
//! SQL-driven equivalence checking between the factorised engine and the
//! relational baselines.

use fdb::core::engine::{ConsolidateMode, ExecutorMode, FdbEngine, PlanStrategy, RunOptions};
use fdb::core::ExhaustiveConfig;
use fdb::relational::engine::{PlanMode, RdbEngine};
use fdb::relational::{GroupStrategy, Relation};
use fdb::Catalog;

/// A factorised engine and two relational baselines over the same data.
pub struct EnginePair {
    pub fdb: FdbEngine,
    pub rdb_sort: RdbEngine,
    pub rdb_hash: RdbEngine,
}

impl EnginePair {
    pub fn new(catalog: Catalog) -> Self {
        EnginePair {
            fdb: FdbEngine::new(catalog.clone()),
            rdb_sort: RdbEngine::new(catalog.clone(), GroupStrategy::Sort),
            rdb_hash: RdbEngine::new(catalog, GroupStrategy::Hash),
        }
    }

    pub fn register(&mut self, name: &str, rel: Relation) {
        self.fdb.register_relation(name, rel.clone());
        self.rdb_sort.register(name, rel.clone());
        self.rdb_hash.register(name, rel);
    }

    /// Parses `sql`, runs it on all engines and plan modes **and every
    /// thread count of [`thread_sweep`]**, and asserts that every result
    /// is the same set of tuples (the parallel≡serial differential
    /// oracle). For every thread count the staged pipeline executor is
    /// additionally checked **bit-identical** to the legacy
    /// one-copy-per-operator path — same factorisation, same f-tree,
    /// same enumerated rows in the same order. Returns the canonical
    /// result.
    pub fn assert_all_agree(&mut self, sql: &str) -> Relation {
        let schemas = self.fdb.schemas();
        let query = fdb::parse(sql, &mut self.fdb.catalog, &schemas)
            .unwrap_or_else(|e| panic!("parse `{sql}`: {e}"));
        self.rdb_sort.catalog = self.fdb.catalog.clone();
        self.rdb_hash.catalog = self.fdb.catalog.clone();
        let task = query.to_task();

        // Every plan flavour of the factorised engine.
        let flavours: [(&str, RunOptions); 4] = [
            ("greedy", RunOptions::default()),
            (
                "no consolidation",
                RunOptions::new().consolidate(ConsolidateMode::Never),
            ),
            (
                "consolidated",
                RunOptions::new().consolidate(ConsolidateMode::Always),
            ),
            (
                "exhaustive",
                RunOptions::new().strategy(PlanStrategy::Exhaustive(ExhaustiveConfig {
                    max_states: 4000,
                })),
            ),
        ];

        let rdb_naive = self
            .rdb_sort
            .run(&task, PlanMode::Naive)
            .unwrap_or_else(|e| panic!("rdb naive `{sql}`: {e}"))
            .canonical();
        let rdb_hash = self
            .rdb_hash
            .run(&task, PlanMode::Naive)
            .unwrap()
            .canonical();
        let rdb_eager = self
            .rdb_sort
            .run(&task, PlanMode::Eager)
            .unwrap_or_else(|e| panic!("rdb eager `{sql}`: {e}"))
            .canonical();
        assert_eq!(rdb_hash, rdb_naive, "hash vs sort grouping on `{sql}`");
        assert_eq!(rdb_eager, rdb_naive, "eager vs naive on `{sql}`");

        // fdb: every plan flavour × every thread count must reproduce the
        // relational ground truth.
        for threads in thread_sweep() {
            for (name, opts) in &flavours {
                let opts = opts.threads(threads);
                let out = self
                    .fdb
                    .run(&task, opts)
                    .unwrap_or_else(|e| panic!("fdb {name} (threads={threads}) `{sql}`: {e}"))
                    .to_relation()
                    .unwrap_or_else(|e| {
                        panic!("fdb {name} (threads={threads}) enumerate `{sql}`: {e}")
                    })
                    .canonical();
                assert_eq!(
                    out, rdb_naive,
                    "fdb {name} (threads={threads}) vs rdb naive on `{sql}`"
                );
            }

            // Fused vs legacy executor: bit-identical factorisation,
            // f-tree and enumeration (not just the same tuple set).
            let staged = self
                .fdb
                .run(&task, RunOptions::with_threads(threads))
                .unwrap_or_else(|e| panic!("fdb staged (threads={threads}) `{sql}`: {e}"));
            let per_op = self
                .fdb
                .run(
                    &task,
                    RunOptions::new()
                        .threads(threads)
                        .executor(ExecutorMode::PerOp),
                )
                .unwrap_or_else(|e| panic!("fdb per-op (threads={threads}) `{sql}`: {e}"));
            // (The f-trees are not compared by canonical key here: each
            // `run` interns its own fresh output attributes, so node
            // ids differ across runs regardless of executor. The
            // plan-level suite in `crates/core/tests/pipeline_fused.rs`
            // pins tree equality on identical plans.)
            assert!(
                staged.rep().same_data(per_op.rep()),
                "fused vs per-op factorisation (threads={threads}) on `{sql}`"
            );
            assert_eq!(
                staged.to_relation().unwrap(),
                per_op.to_relation().unwrap(),
                "fused vs per-op enumeration (threads={threads}) on `{sql}`"
            );
        }

        // Shared-snapshot axis: concurrent sessions over one Db (cheap
        // engine clones sharing the input arenas via Arc) must be byte
        // identical to each other and reproduce the ground truth.
        let db = fdb::Db::from_engine(self.fdb.clone());
        let serial = db
            .session()
            .query(sql)
            .unwrap_or_else(|e| panic!("session serial `{sql}`: {e}"))
            .rows;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let mut session = db.session();
                    scope.spawn(move || session.query(sql).map(|out| out.rows))
                })
                .collect();
            for h in handles {
                let rows = h
                    .join()
                    .expect("session thread")
                    .unwrap_or_else(|e| panic!("concurrent session `{sql}`: {e}"));
                assert_eq!(rows, serial, "concurrent vs serial session on `{sql}`");
            }
        });
        assert_eq!(
            serial.canonical(),
            rdb_naive,
            "shared-snapshot session vs rdb naive on `{sql}`"
        );

        // rdb: the parallel baselines must agree with their serial selves.
        for threads in thread_sweep() {
            if threads == 1 {
                continue;
            }
            self.rdb_sort.threads = threads;
            self.rdb_hash.threads = threads;
            let sort_par = self
                .rdb_sort
                .run(&task, PlanMode::Naive)
                .unwrap()
                .canonical();
            let hash_par = self
                .rdb_hash
                .run(&task, PlanMode::Naive)
                .unwrap()
                .canonical();
            self.rdb_sort.threads = 1;
            self.rdb_hash.threads = 1;
            assert_eq!(sort_par, rdb_naive, "rdb sort (threads={threads}) `{sql}`");
            assert_eq!(hash_par, rdb_naive, "rdb hash (threads={threads}) `{sql}`");
        }
        rdb_naive
    }

    /// Runs `sql` on the factorised engine only, returning the (ordered)
    /// result for order-sensitive assertions.
    pub fn run_fdb(&mut self, sql: &str) -> Relation {
        let schemas = self.fdb.schemas();
        let query = fdb::parse(sql, &mut self.fdb.catalog, &schemas)
            .unwrap_or_else(|e| panic!("parse `{sql}`: {e}"));
        let task = query.to_task();
        self.fdb
            .run_default(&task)
            .unwrap_or_else(|e| panic!("fdb `{sql}`: {e}"))
            .to_relation()
            .unwrap_or_else(|e| panic!("fdb enumerate `{sql}`: {e}"))
    }
}

/// The worker-thread counts the differential suites sweep: `{1, 2, 4}`
/// by default. Setting `FDB_TEST_THREADS=N` *replaces* the parallel
/// part with `{1, N}` — serial stays as the reference — so CI can
/// exercise an extra, odd count without re-paying the default sweep.
pub fn thread_sweep() -> Vec<usize> {
    if let Ok(v) = std::env::var("FDB_TEST_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 1 {
                return vec![1, n];
            }
        }
    }
    vec![1, 2, 4]
}

/// The pizzeria database registered in all engines.
pub fn pizzeria_engines() -> EnginePair {
    let mut catalog = Catalog::new();
    let db = fdb::workload::pizzeria::pizzeria(&mut catalog);
    let mut pair = EnginePair::new(catalog);
    pair.register("Orders", db.orders);
    pair.register("Pizzas", db.pizzas);
    pair.register("Items", db.items);
    pair
}
