//! Quickstart: SQL on factorised data in five steps.
//!
//! Registers the pizzeria base relations, parses an aggregation query
//! with the SQL front-end, runs it on the factorised engine, and compares
//! against the relational baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use fdb::core::engine::FdbEngine;
use fdb::relational::engine::{PlanMode, RdbEngine};
use fdb::relational::GroupStrategy;
use fdb::workload::pizzeria::pizzeria;
use fdb::Catalog;

fn main() {
    // 1. A catalog and the Figure 1 database.
    let mut catalog = Catalog::new();
    let db = pizzeria(&mut catalog);

    // 2. Register the base relations with the factorised engine.
    let mut engine = FdbEngine::new(catalog);
    engine.register_relation("Orders", db.orders.clone());
    engine.register_relation("Pizzas", db.pizzas.clone());
    engine.register_relation("Items", db.items.clone());

    // 3. Parse a query with aggregates, grouping, ordering and a limit.
    let sql = "SELECT customer, SUM(price) AS revenue \
               FROM Orders, Pizzas, Items \
               GROUP BY customer \
               ORDER BY revenue DESC \
               LIMIT 2";
    println!("query: {sql}\n");
    let schemas = engine.schemas();
    let query = fdb::parse(sql, &mut engine.catalog, &schemas).expect("valid SQL");
    let task = query.to_task();

    // 4. Run on the factorised engine (joins become factorisations; the
    //    aggregate runs as partial aggregation operators on them).
    let result = engine.run_default(&task).expect("planning succeeds");
    println!(
        "result factorisation: {} singletons, ordering realised in-tree: {}",
        result.singleton_count(),
        result.order_supported_in_tree()
    );
    let rel = result.to_relation().expect("enumeration succeeds");
    println!("\nFDB result:\n{}", rel.display(&engine.catalog));

    // 5. Cross-check with the relational baseline engine.
    let mut rdb = RdbEngine::new(engine.catalog.clone(), GroupStrategy::Sort);
    rdb.register("Orders", db.orders);
    rdb.register("Pizzas", db.pizzas);
    rdb.register("Items", db.items);
    let baseline = rdb.run(&task, PlanMode::Naive).expect("baseline runs");
    println!("RDB result:\n{}", baseline.display(&rdb.catalog));
    assert_eq!(rel.canonical(), baseline.canonical());
    println!("both engines agree ✓");
}
