//! Error type for the factorised engine.

use std::fmt;

/// Errors raised by f-tree manipulation, factorised evaluation and planning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FdbError {
    /// An operator was applied to nodes in an invalid position (e.g. merge
    /// of non-siblings, swap of non-parent-child).
    InvalidOperator(String),
    /// A composition of aggregation operators outside Proposition 2, e.g.
    /// `count` over a `sum` aggregate singleton.
    InvalidComposition(String),
    /// The f-tree would violate the path constraint (Proposition 1).
    PathConstraint(String),
    /// An aggregate met a non-numeric value.
    NonNumeric(String),
    /// Name resolution failure.
    Unresolved(String),
    /// Requested enumeration order is not supported and restructuring was
    /// disabled or failed.
    OrderUnsupported(String),
    /// Planner could not produce a plan (e.g. state budget exhausted).
    PlanningFailed(String),
    /// The run's wall-clock budget (`RunOptions::deadline`) expired
    /// during planning, execution or enumeration.
    DeadlineExceeded(String),
}

impl fmt::Display for FdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FdbError::InvalidOperator(m) => write!(f, "invalid operator application: {m}"),
            FdbError::InvalidComposition(m) => {
                write!(f, "invalid aggregation composition (Prop. 2): {m}")
            }
            FdbError::PathConstraint(m) => write!(f, "path constraint violation: {m}"),
            FdbError::NonNumeric(m) => write!(f, "non-numeric value in aggregate: {m}"),
            FdbError::Unresolved(m) => write!(f, "unresolved name: {m}"),
            FdbError::OrderUnsupported(m) => write!(f, "order not supported: {m}"),
            FdbError::PlanningFailed(m) => write!(f, "planning failed: {m}"),
            FdbError::DeadlineExceeded(m) => write!(f, "deadline exceeded: {m}"),
        }
    }
}

impl std::error::Error for FdbError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, FdbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = FdbError::InvalidComposition("count over sum(price)".into());
        assert!(e.to_string().contains("Prop. 2"));
        assert!(e.to_string().contains("count over sum(price)"));
    }
}
