//! Differential suite for the staged pipeline executor: on randomly
//! generated databases and randomly generated *valid* f-plans, fused
//! (in-place, staged, compacted) execution must be bit-identical to the
//! legacy one-copy-per-operator path, for worker-thread counts
//! {1, 2, 4}. Complements the SQL-level oracle in `tests/oracle.rs`,
//! which sweeps the same property through the whole engine.

use fdb_core::frep::FRep;
use fdb_core::ftree::{AggOp, FTree, NodeId, NodeLabel};
use fdb_core::pipeline::{execute_per_op, execute_staged};
use fdb_core::plan::{apply_to_tree, FOp, FPlan};
use fdb_relational::{AttrId, Catalog, CmpOp, Relation, Schema, Value};
use proptest::prelude::*;

/// A three-attribute path factorisation times a one-attribute root —
/// the product gives the plan generator sibling roots to merge and a
/// forest to restructure.
fn build_rep(catalog: &mut Catalog, rows: &[(i64, i64, i64)], extra: &[i64]) -> FRep {
    let x = catalog.intern("x");
    let y = catalog.intern("y");
    let z = catalog.intern("z");
    let w = catalog.intern("w");
    let rel = Relation::from_rows(
        Schema::new(vec![x, y, z]),
        rows.iter()
            .map(|&(a, b, c)| vec![Value::Int(a), Value::Int(b), Value::Int(c)]),
    )
    .canonical();
    let left = FRep::from_relation(&rel, FTree::path(&[x, y, z])).unwrap();
    let extra_rel = Relation::from_rows(
        Schema::new(vec![w]),
        extra.iter().map(|&v| vec![Value::Int(v)]),
    )
    .canonical();
    let right = FRep::from_relation(&extra_rel, FTree::path(&[w])).unwrap();
    fdb_core::ops::product(left, right)
}

/// Attributes of atomic nodes (selectable, projectable, absorbable).
fn atomic_attrs(tree: &FTree) -> Vec<(NodeId, AttrId)> {
    tree.live_nodes()
        .into_iter()
        .filter_map(|n| match &tree.node(n).label {
            NodeLabel::Atomic(attrs) => Some((n, attrs[0])),
            NodeLabel::Agg(_) => None,
        })
        .collect()
}

/// Builds a random valid plan from a pick stream, simulating each
/// candidate on a scratch tree so every emitted operator is legal for
/// the tree state it will meet at execution time.
fn random_plan(tree0: &FTree, catalog: &mut Catalog, picks: &[(u8, u8, u8)]) -> FPlan {
    let mut tree = tree0.clone();
    let mut plan = FPlan::new();
    let mut fresh = 0usize;
    for &(sel, p1, p2) in picks {
        let live = tree.live_nodes();
        let attrs = tree.all_attrs();
        if attrs.is_empty() {
            break;
        }
        let pick_attr = attrs[p1 as usize % attrs.len()];
        let select_op = FOp::SelectConst {
            attr: pick_attr,
            op: [CmpOp::Le, CmpOp::Ge, CmpOp::Ne, CmpOp::Eq][p2 as usize % 4],
            value: Value::Int((p2 % 5) as i64),
        };
        let op = match sel % 6 {
            1 => {
                // Swap a child above its parent.
                let edges: Vec<(NodeId, NodeId)> = live
                    .iter()
                    .filter_map(|&n| tree.node(n).parent.map(|p| (p, n)))
                    .collect();
                if edges.is_empty() {
                    select_op
                } else {
                    let (parent, child) = edges[p1 as usize % edges.len()];
                    FOp::Swap { parent, child }
                }
            }
            2 => {
                // Aggregate one subtree (or, rarely, the whole forest).
                let out = {
                    fresh += 1;
                    catalog.intern(&format!("agg{fresh}"))
                };
                let (parent, targets) = if p1 % 7 == 0 {
                    (None, tree.roots().to_vec())
                } else {
                    let inner: Vec<NodeId> = live
                        .iter()
                        .copied()
                        .filter(|&n| tree.node(n).parent.is_some())
                        .collect();
                    match inner.get(p1 as usize % inner.len().max(1)) {
                        None => (None, tree.roots().to_vec()),
                        Some(&n) => (tree.node(n).parent, vec![n]),
                    }
                };
                // Always include Count so later aggregations stay
                // composable (Prop. 2); add a Sum when a target subtree
                // provides the attribute.
                let mut funcs = vec![AggOp::Count];
                let mut outputs = vec![out];
                if p2 % 2 == 0 {
                    let mut provided: Vec<AttrId> = Vec::new();
                    for &t in &targets {
                        for (n, a) in atomic_attrs(&tree) {
                            if n == t || tree.is_ancestor(t, n) {
                                provided.push(a);
                            }
                        }
                    }
                    if let Some(&a) = provided.get(p2 as usize % 3) {
                        funcs.push(AggOp::Sum(a));
                        fresh += 1;
                        outputs.push(catalog.intern(&format!("agg{fresh}")));
                    }
                }
                FOp::Aggregate {
                    parent,
                    targets,
                    funcs,
                    outputs,
                }
            }
            3 => {
                // Project away an atomic attribute (keep ≥ 2 nodes live).
                let cands = atomic_attrs(&tree);
                if cands.is_empty() || live.len() < 2 {
                    select_op
                } else {
                    let (_, attr) = cands[p1 as usize % cands.len()];
                    FOp::ProjectAway { attr }
                }
            }
            4 => {
                fresh += 1;
                FOp::Rename {
                    from: pick_attr,
                    to: catalog.intern(&format!("r{fresh}")),
                }
            }
            5 => {
                // Merge two atomic roots, else absorb along a path.
                let roots: Vec<NodeId> = tree
                    .roots()
                    .iter()
                    .copied()
                    .filter(|&n| matches!(tree.node(n).label, NodeLabel::Atomic(_)))
                    .collect();
                if roots.len() >= 2 {
                    FOp::Merge {
                        a: roots[0],
                        b: roots[1],
                    }
                } else {
                    let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
                    for (anc, _) in atomic_attrs(&tree) {
                        for (desc, _) in atomic_attrs(&tree) {
                            if tree.is_ancestor(anc, desc) {
                                pairs.push((anc, desc));
                            }
                        }
                    }
                    match pairs.get(p1 as usize % pairs.len().max(1)) {
                        Some(&(anc, desc)) => FOp::Absorb { anc, desc },
                        None => select_op,
                    }
                }
            }
            _ => select_op,
        };
        let mut scratch = tree.clone();
        if apply_to_tree(&mut scratch, &op).is_ok() {
            tree = scratch;
            plan.push(op);
        }
    }
    plan
}

fn assert_fused_matches_legacy(rep: &FRep, plan: &FPlan) {
    let legacy = execute_per_op(plan, rep.clone(), 1);
    for threads in [1usize, 2, 4] {
        let fused = execute_staged(plan, rep.clone(), threads);
        match (&legacy, &fused) {
            (Ok((l, _)), Ok((f, _))) => {
                assert!(
                    f.check_invariants().is_ok(),
                    "invariants (threads={threads}) on {plan:?}"
                );
                assert!(
                    f.same_data(l),
                    "data differs (threads={threads}) on {plan:?}"
                );
                assert_eq!(
                    f.ftree().canonical_key(),
                    l.ftree().canonical_key(),
                    "tree differs (threads={threads}) on {plan:?}"
                );
                assert_eq!(
                    f.flatten().canonical(),
                    l.flatten().canonical(),
                    "flattening differs (threads={threads}) on {plan:?}"
                );
            }
            (Err(_), Err(_)) => {}
            (l, f) => panic!(
                "executors disagree on success (threads={threads}): \
                 legacy {l:?} vs fused {f:?} on {plan:?}"
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    #[test]
    fn fused_execution_matches_legacy_on_random_plans(
        rows in prop::collection::vec((0i64..5, 0i64..5, 0i64..5), 0..20),
        extra in prop::collection::vec(0i64..5, 0..5),
        picks in prop::collection::vec((0u8..6, 0u8..32, 0u8..32), 1..9),
    ) {
        let mut catalog = Catalog::new();
        let rep = build_rep(&mut catalog, &rows, &extra);
        let plan = random_plan(rep.ftree(), &mut catalog, &picks);
        assert_fused_matches_legacy(&rep, &plan);
    }
}

#[test]
fn fused_matches_legacy_on_empty_and_singleton_databases() {
    for (rows, extra) in [
        (vec![], vec![]),
        (vec![(1, 1, 1)], vec![2]),
        (vec![(0, 0, 0), (0, 1, 0), (1, 0, 1)], vec![]),
    ] {
        let mut catalog = Catalog::new();
        let rep = build_rep(&mut catalog, &rows, &extra);
        // A fixed stress plan: filters, swap, merge, aggregate.
        let picks: Vec<(u8, u8, u8)> = vec![
            (0, 1, 3),
            (5, 0, 0),
            (1, 2, 1),
            (0, 2, 6),
            (2, 3, 2),
            (3, 1, 0),
        ];
        let plan = random_plan(rep.ftree(), &mut catalog, &picks);
        assert_fused_matches_legacy(&rep, &plan);
    }
}

#[test]
fn staged_intermediate_bytes_beat_per_op_on_long_plans() {
    let mut catalog = Catalog::new();
    let rows: Vec<(i64, i64, i64)> = (0..600).map(|i| (i % 23, (i * 7) % 17, i % 11)).collect();
    let rep = build_rep(&mut catalog, &rows, &[1, 2, 3]);
    let x = catalog.lookup("x").unwrap();
    let y = catalog.lookup("y").unwrap();
    let nx = rep.ftree().node_of_attr(x).unwrap();
    let ny = rep.ftree().node_of_attr(y).unwrap();
    let out = catalog.intern("n");
    let mut plan = FPlan::new();
    plan.push(FOp::SelectConst {
        attr: x,
        op: CmpOp::Le,
        value: Value::Int(20),
    });
    plan.push(FOp::SelectConst {
        attr: y,
        op: CmpOp::Ne,
        value: Value::Int(3),
    });
    plan.push(FOp::Swap {
        parent: nx,
        child: ny,
    });
    plan.push(FOp::Aggregate {
        parent: Some(ny),
        targets: vec![nx],
        funcs: vec![AggOp::Count],
        outputs: vec![out],
    });
    let (legacy, per_op) = execute_per_op(&plan, rep.clone(), 1).unwrap();
    let (fused, staged) = execute_staged(&plan, rep, 1).unwrap();
    assert!(fused.same_data(&legacy));
    assert!(staged.compacted);
    assert!(staged.copies_avoided > 0);
    assert!(
        staged.intermediate_bytes < per_op.intermediate_bytes,
        "staged {} >= per-op {}",
        staged.intermediate_bytes,
        per_op.intermediate_bytes
    );
    // The compacted fused result is no bigger than the legacy result.
    assert!(fused.memory_bytes() <= legacy.memory_bytes());
}
