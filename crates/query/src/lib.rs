//! # fdb-query — SQL-ish front-end for the FDB reproduction
//!
//! Parses the query dialect of the paper (§2): select-project-join queries
//! over natural joins, with `SUM`/`COUNT`/`MIN`/`MAX`/`AVG` aggregates,
//! `GROUP BY`, `HAVING`, `ORDER BY … ASC|DESC` and `LIMIT`. Attribute names
//! resolve against registered relation schemas and intern into the shared
//! [`fdb_relational::Catalog`]; the resolved [`Query`] lowers to a
//! [`fdb_relational::planner::JoinAggTask`] runnable by both the relational
//! baselines and the factorised engine.
//!
//! ```
//! use fdb_relational::{Catalog, Schema};
//! use std::collections::HashMap;
//!
//! let mut catalog = Catalog::new();
//! let item = catalog.intern("item");
//! let price = catalog.intern("price");
//! let mut schemas = HashMap::new();
//! schemas.insert("Items".to_string(), Schema::new(vec![item, price]));
//!
//! let q = fdb_query::parse(
//!     "SELECT item, SUM(price) AS total FROM Items GROUP BY item ORDER BY total DESC",
//!     &mut catalog,
//!     &schemas,
//! ).unwrap();
//! assert!(q.is_aggregate());
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;

pub use ast::{DeleteStmt, InsertStmt, Query, SelectItem, Statement};
pub use error::QueryError;
pub use parser::{parse, parse_statement};
