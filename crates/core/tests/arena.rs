//! Arena round-trip coverage: build-from-relation → serialize via
//! `io` → reload → canonical-flatten equality, plus the edge shapes the
//! flat storage has to get right (empty root unions, single-entry
//! unions, deep paths) and sanity checks on the physical size report.

use fdb_core::frep::FRep;
use fdb_core::ftree::{FTree, NodeLabel};
use fdb_core::io::{read_frep, write_frep};
use fdb_relational::{Catalog, Relation, Schema, Value};

/// Serialize → reload (re-interning into a clone of the catalog, so
/// attribute ids line up) → compare canonical flattens.
fn round_trip(rep: &FRep, catalog: &Catalog) -> FRep {
    let mut buf = Vec::new();
    write_frep(rep, catalog, &mut buf).expect("serialises");
    let mut fresh = catalog.clone();
    let back = read_frep(buf.as_slice(), &mut fresh).expect("reloads");
    back.check_invariants().expect("reloaded invariants hold");
    assert_eq!(
        back.flatten().canonical(),
        rep.flatten().canonical(),
        "canonical flatten differs after round trip"
    );
    assert_eq!(back.singleton_count(), rep.singleton_count());
    assert_eq!(back.tuple_count(), rep.tuple_count());
    back
}

#[test]
fn relation_build_round_trips_through_io() {
    let mut c = Catalog::new();
    let x = c.intern("x");
    let y = c.intern("y");
    let z = c.intern("z");
    let rel = Relation::from_rows(
        Schema::new(vec![x, y, z]),
        (0..60).map(|i| {
            vec![
                Value::Int(i % 7),
                Value::str(format!("s{}", i % 5)),
                Value::Int(i % 3),
            ]
        }),
    );
    let rep = FRep::from_relation(&rel, FTree::path(&[x, y, z])).unwrap();
    let back = round_trip(&rep, &c);
    // Structural equality too, not just tuple-set equality.
    assert!(back.same_data(&rep));
}

#[test]
fn empty_relation_round_trips() {
    // Emptiness is representable only at the roots: the arena holds one
    // zero-length root union per forest root.
    let mut c = Catalog::new();
    let a = c.intern("a");
    let b = c.intern("b");
    let rel = Relation::empty(Schema::new(vec![a, b]));
    let rep = FRep::from_relation(&rel, FTree::path(&[a, b])).unwrap();
    assert!(rep.is_empty());
    assert_eq!(rep.root(0).len(), 0);
    let back = round_trip(&rep, &c);
    assert!(back.is_empty());
    assert_eq!(back.root_count(), 1);
}

#[test]
fn empty_forest_round_trips() {
    // A forest of two empty roots (product shape on an empty relation).
    let mut c = Catalog::new();
    let a = c.intern("a");
    let b = c.intern("b");
    let mut t = FTree::new();
    t.add_node(NodeLabel::Atomic(vec![a]), None);
    t.add_node(NodeLabel::Atomic(vec![b]), None);
    let rep = FRep::empty(t);
    assert_eq!(rep.root_count(), 2);
    let back = round_trip(&rep, &c);
    assert_eq!(back.root_count(), 2);
    assert!(back.root_unions().all(|u| u.is_empty()));
}

#[test]
fn single_entry_chain_round_trips() {
    // One tuple through a path tree: every union on the spine has
    // exactly one entry.
    let mut c = Catalog::new();
    let a = c.intern("a");
    let b = c.intern("b");
    let d = c.intern("d");
    let rel = Relation::from_rows(
        Schema::new(vec![a, b, d]),
        [(1i64, 2i64, 3i64)]
            .into_iter()
            .map(|(x, y, z)| vec![Value::Int(x), Value::Int(y), Value::Int(z)]),
    );
    let rep = FRep::from_relation(&rel, FTree::path(&[a, b, d])).unwrap();
    assert_eq!(rep.singleton_count(), 3);
    assert_eq!(rep.root(0).len(), 1);
    assert_eq!(rep.root(0).entry(0).child(0).len(), 1);
    round_trip(&rep, &c);
}

#[test]
fn deep_path_round_trips() {
    // A 12-level path: deep nesting exercises the recursive reader and
    // the iterative flatten walk alike.
    let mut c = Catalog::new();
    let attrs: Vec<_> = (0..12).map(|i| c.intern(&format!("a{i}"))).collect();
    let rel = Relation::from_rows(
        Schema::new(attrs.clone()),
        (0..16i64).map(|r| (0..12).map(|j| Value::Int((r >> (j % 4)) & 1)).collect()),
    );
    let rep = FRep::from_relation(&rel, FTree::path(&attrs)).unwrap();
    let back = round_trip(&rep, &c);
    assert!(back.same_data(&rep));
}

#[test]
fn branching_tree_round_trips_after_operators() {
    // Run the representation through swap + aggregate first, so the
    // serialized arena is one produced by the copy-transform operators
    // (possibly holding unreachable records), then round-trip it.
    let mut c = Catalog::new();
    let x = c.intern("x");
    let y = c.intern("y");
    let z = c.intern("z");
    let rel = Relation::from_rows(
        Schema::new(vec![x, y, z]),
        (0..40).map(|i| vec![Value::Int(i % 4), Value::Int(i % 10), Value::Int(i)]),
    );
    let rep = FRep::from_relation(&rel, FTree::path(&[x, y, z])).unwrap();
    let nx = rep.ftree().roots()[0];
    let ny = rep.ftree().node(nx).children[0];
    let rep = fdb_core::ops::swap(rep, nx, ny).unwrap();
    let out = c.intern("n");
    let nz = rep.ftree().node_of_attr(z).unwrap();
    let target = fdb_core::ops::AggTarget::subtree(rep.ftree(), nz);
    let rep =
        fdb_core::ops::aggregate(rep, &target, vec![fdb_core::AggOp::Count], vec![out]).unwrap();
    round_trip(&rep, &c);
}

#[test]
fn select_to_empty_round_trips() {
    // Pruning to the empty relation leaves empty root unions tagged with
    // the right nodes; the round trip must preserve that shape.
    let mut c = Catalog::new();
    let a = c.intern("a");
    let b = c.intern("b");
    let rel = Relation::from_rows(
        Schema::new(vec![a, b]),
        [(1, 2), (3, 4)]
            .into_iter()
            .map(|(x, y)| vec![Value::Int(x), Value::Int(y)]),
    );
    let rep = FRep::from_relation(&rel, FTree::path(&[a, b])).unwrap();
    let rep =
        fdb_core::ops::select_const(rep, b, fdb_relational::CmpOp::Gt, &Value::Int(99)).unwrap();
    assert!(rep.is_empty());
    let back = round_trip(&rep, &c);
    assert!(back.is_empty());
}

#[test]
fn stats_track_logical_and_physical_size() {
    let mut c = Catalog::new();
    let a = c.intern("a");
    let b = c.intern("b");
    let rel = Relation::from_rows(
        Schema::new(vec![a, b]),
        (0..30).map(|i| vec![Value::Int(i % 6), Value::str(format!("payload-{i}"))]),
    );
    let rep = FRep::from_relation(&rel, FTree::path(&[a, b])).unwrap();
    let s = rep.stats();
    // 6 a-values + 30 distinct (a,b) pairs.
    assert_eq!(s.singletons, 36);
    assert_eq!(s.values, 36);
    assert_eq!(s.entries, 36);
    assert_eq!(s.unions, 7); // the a-union + 6 b-unions
                             // Capacity-aware byte count must at least cover the string payloads.
    let payload: usize = (0..30).map(|i| format!("payload-{i}").len()).sum();
    assert!(s.bytes > payload, "bytes={} payload={}", s.bytes, payload);
    assert_eq!(rep.memory_bytes(), s.bytes);
    // A clone's stats are identical (capacities may differ only upward).
    let clone_stats = rep.clone().stats();
    assert_eq!(clone_stats.singletons, s.singletons);
    assert_eq!(clone_stats.entries, s.entries);
}

#[test]
fn compaction_sheds_garbage_and_preserves_data() {
    // In-place operators leave superseded records behind; compaction
    // must shed them without changing the represented data, and the
    // compacted arena must round-trip through io like any other.
    let mut c = Catalog::new();
    let x = c.intern("x");
    let y = c.intern("y");
    let z = c.intern("z");
    let rel = Relation::from_rows(
        Schema::new(vec![x, y, z]),
        (0..60).map(|i| vec![Value::Int(i % 6), Value::Int(i % 11), Value::Int(i % 4)]),
    );
    let rep = FRep::from_relation(&rel, FTree::path(&[x, y, z])).unwrap();
    let rep =
        fdb_core::ops::select_const_inplace(rep, y, fdb_relational::CmpOp::Ne, &Value::Int(3))
            .unwrap();
    let nx = rep.ftree().node_of_attr(x).unwrap();
    let ny = rep.ftree().node_of_attr(y).unwrap();
    let rep = fdb_core::ops::swap_inplace(rep, nx, ny).unwrap();
    let before = rep.stats();
    let logical = rep.flatten().canonical();
    let compacted = rep.compact();
    compacted.check_invariants().unwrap();
    let after = compacted.stats();
    assert_eq!(compacted.flatten().canonical(), logical);
    assert_eq!(after.singletons, before.singletons);
    assert!(
        after.unions < before.unions,
        "compaction shed no unions: {} -> {}",
        before.unions,
        after.unions
    );
    assert!(after.bytes < before.bytes);
    // The diagnostic counter survives compaction.
    assert_eq!(after.copies_avoided, before.copies_avoided);
    round_trip(&compacted, &c);
}

#[test]
fn compaction_preserves_sharing() {
    // The in-place swap shares the `E_a` fragments across b-branches;
    // compaction must keep one physical copy per shared fragment, so
    // the compacted arena is no bigger than what the legacy copying
    // swap produces.
    let mut c = Catalog::new();
    let x = c.intern("x");
    let y = c.intern("y");
    let z = c.intern("z");
    let rel = Relation::from_rows(
        Schema::new(vec![x, y, z]),
        (0..80).map(|i| vec![Value::Int(i % 4), Value::Int(i % 5), Value::Int(i % 16)]),
    );
    let rep = FRep::from_relation(&rel, FTree::path(&[x, y, z])).unwrap();
    let nx = rep.ftree().node_of_attr(x).unwrap();
    let ny = rep.ftree().node_of_attr(y).unwrap();
    let legacy = fdb_core::ops::swap(rep.clone(), nx, ny).unwrap();
    let compacted = fdb_core::ops::swap_inplace(rep, nx, ny).unwrap().compact();
    compacted.check_invariants().unwrap();
    assert!(compacted.same_data(&legacy));
    assert_eq!(compacted.singleton_count(), legacy.singleton_count());
    let (cs, ls) = (compacted.stats(), legacy.stats());
    assert!(
        cs.entries <= ls.entries,
        "sharing lost in compaction: {} > {}",
        cs.entries,
        ls.entries
    );
}
