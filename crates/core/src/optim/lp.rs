//! A small dense simplex solver for the packing LPs behind factorisation
//! size bounds.
//!
//! The paper's cost metric uses tight size bounds for factorisations over
//! f-trees, built on *fractional edge cover* numbers of query hypergraphs
//! [Grohe & Marx; Olteanu & Závodný ICDT'12]. The covering LP
//! `min Σ_e x_e·w_e  s.t.  ∀a∈S: Σ_{e∋a} x_e ≥ 1, x ≥ 0` has, by LP
//! duality, the same optimum as the packing LP
//! `max Σ_{a∈S} y_a  s.t.  ∀e: Σ_{a∈e} y_a ≤ w_e, y ≥ 0`,
//! which is feasible at `y = 0` — so a single-phase simplex suffices.
//! Instances here are tiny (a handful of relations and attributes).

/// Maximises `obj · y` subject to `rows[i] · y ≤ caps[i]` and `y ≥ 0`.
///
/// Returns the optimal objective value; `f64::INFINITY` if unbounded
/// (which for edge-cover duals means some objective variable appears in no
/// constraint — an uncoverable attribute).
pub fn maximize_packing(obj: &[f64], rows: &[Vec<f64>], caps: &[f64]) -> f64 {
    let n = obj.len();
    let m = rows.len();
    if n == 0 {
        return 0.0;
    }
    // An objective variable not appearing (with a positive coefficient) in
    // any constraint row makes the LP unbounded.
    for j in 0..n {
        if obj[j] > 0.0 && !rows.iter().any(|r| r[j] > 0.0) {
            return f64::INFINITY;
        }
    }
    // Tableau: m rows × (n original + m slack + 1 rhs), plus the objective
    // row (negated for maximisation). Basis starts as the slack variables.
    let cols = n + m + 1;
    let mut t = vec![vec![0.0f64; cols]; m + 1];
    for i in 0..m {
        for j in 0..n {
            t[i][j] = rows[i][j];
        }
        t[i][n + i] = 1.0;
        t[i][cols - 1] = caps[i];
        debug_assert!(caps[i] >= -1e-12, "packing caps must be non-negative");
    }
    for j in 0..n {
        t[m][j] = -obj[j];
    }
    let mut basis: Vec<usize> = (n..n + m).collect();
    const EPS: f64 = 1e-9;
    for _iter in 0..10_000 {
        // Bland's rule: entering variable = lowest index with negative
        // reduced cost (prevents cycling).
        let Some(enter) = (0..cols - 1).find(|&j| t[m][j] < -EPS) else {
            // Optimal: objective value is in the corner (negated).
            return t[m][cols - 1];
        };
        // Ratio test; Bland tie-break on the leaving basis variable.
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for i in 0..m {
            if t[i][enter] > EPS {
                let ratio = t[i][cols - 1] / t[i][enter];
                if ratio < best - EPS
                    || ((ratio - best).abs() <= EPS && leave.is_none_or(|l| basis[i] < basis[l]))
                {
                    best = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(leave) = leave else {
            return f64::INFINITY; // unbounded direction
        };
        // Pivot.
        let pivot = t[leave][enter];
        for v in t[leave].iter_mut() {
            *v /= pivot;
        }
        let pivot_row = std::mem::take(&mut t[leave]);
        for (i, row) in t.iter_mut().enumerate().take(m + 1) {
            if i != leave {
                let factor = row[enter];
                if factor.abs() > EPS {
                    for (v, &p) in row.iter_mut().zip(&pivot_row) {
                        *v -= factor * p;
                    }
                }
            }
        }
        t[leave] = pivot_row;
        basis[leave] = enter;
    }
    debug_assert!(false, "simplex exceeded iteration bound");
    t[m][cols - 1]
}

/// Fractional edge cover optimum for attribute set `s` with weighted
/// edges: `min Σ x_e·w_e` covering every attribute of `s` at least once.
///
/// `edges` pairs each hyperedge (as indices into `s`-aligned positions
/// handled by the caller) with its weight `w_e ≥ 0`. Attributes of `s` not
/// touched by any edge make the cover infeasible (`f64::INFINITY`).
pub fn fractional_edge_cover(num_attrs: usize, edges: &[(Vec<usize>, f64)]) -> f64 {
    let obj = vec![1.0; num_attrs];
    let rows: Vec<Vec<f64>> = edges
        .iter()
        .map(|(members, _)| {
            let mut row = vec![0.0; num_attrs];
            for &a in members {
                row[a] = 1.0;
            }
            row
        })
        .collect();
    let caps: Vec<f64> = edges.iter().map(|(_, w)| *w).collect();
    maximize_packing(&obj, &rows, &caps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn single_edge_covers_everything() {
        // One relation over {0,1}: ρ* = 1 (weight 1).
        let v = fractional_edge_cover(2, &[(vec![0, 1], 1.0)]);
        assert!(close(v, 1.0), "got {v}");
    }

    #[test]
    fn path_join_needs_two_edges() {
        // R(a,b), S(b,c): covering {a,b,c} needs both edges: ρ* = 2.
        let v = fractional_edge_cover(3, &[(vec![0, 1], 1.0), (vec![1, 2], 1.0)]);
        assert!(close(v, 2.0), "got {v}");
    }

    #[test]
    fn triangle_has_fractional_optimum() {
        // R(a,b), S(b,c), T(a,c): ρ* = 1.5 — the classic case where the
        // fractional cover beats any integral one.
        let v = fractional_edge_cover(
            3,
            &[(vec![0, 1], 1.0), (vec![1, 2], 1.0), (vec![0, 2], 1.0)],
        );
        assert!(close(v, 1.5), "got {v}");
    }

    #[test]
    fn weights_scale_the_cover() {
        // Same triangle with ln-sizes 2.0: bound exponent 3.0.
        let v = fractional_edge_cover(
            3,
            &[(vec![0, 1], 2.0), (vec![1, 2], 2.0), (vec![0, 2], 2.0)],
        );
        assert!(close(v, 3.0), "got {v}");
    }

    #[test]
    fn subset_attrs_use_cheapest_edge() {
        // Covering only {b} with edges R(a,b) weight 3, S(b,c) weight 1:
        // pick S: optimum 1.
        let v = fractional_edge_cover(1, &[(vec![0], 3.0), (vec![0], 1.0)]);
        assert!(close(v, 1.0), "got {v}");
    }

    #[test]
    fn uncovered_attribute_is_infeasible() {
        let v = fractional_edge_cover(2, &[(vec![0], 1.0)]);
        assert!(v.is_infinite());
    }

    #[test]
    fn star_join_cover() {
        // Fact(a,b,c,d) + three dimension tables (b),(c),(d): covering all
        // four attrs: the fact edge alone suffices: 1.
        let v = fractional_edge_cover(
            4,
            &[
                (vec![0, 1, 2, 3], 1.0),
                (vec![1], 1.0),
                (vec![2], 1.0),
                (vec![3], 1.0),
            ],
        );
        assert!(close(v, 1.0), "got {v}");
    }

    #[test]
    fn empty_attr_set_costs_nothing() {
        assert_eq!(fractional_edge_cover(0, &[(vec![], 1.0)]), 0.0);
    }

    #[test]
    fn zero_weight_edges_are_free() {
        // An edge with weight 0 (size-1 relation) covers for free.
        let v = fractional_edge_cover(2, &[(vec![0, 1], 0.0), (vec![0], 5.0)]);
        assert!(close(v, 0.0), "got {v}");
    }
}
