//! Timing and output-format helpers shared by the figure binaries.

use std::time::Instant;

/// Wall-clock seconds of one invocation, plus its result.
pub fn time_secs<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Median wall-clock seconds over `repeats` invocations (the figure
/// binaries default to 3, like the paper's "time the last repetition"
/// policy but robust to one-off noise). Returns the last result.
pub fn median_secs<R>(repeats: usize, mut f: impl FnMut() -> R) -> (R, f64) {
    assert!(repeats >= 1);
    let mut times = Vec::with_capacity(repeats);
    let mut last = None;
    for _ in 0..repeats {
        let (r, t) = time_secs(&mut f);
        times.push(t);
        last = Some(r);
    }
    times.sort_by(f64::total_cmp);
    (last.expect("at least one repeat"), times[times.len() / 2])
}

/// One output row, greppable and gnuplot-friendly.
pub fn print_row(figure: &str, scale: u32, query: &str, engine: &str, seconds: f64, note: &str) {
    let note = if note.is_empty() {
        String::new()
    } else {
        format!(" {note}")
    };
    println!(
        "figure={figure} scale={scale} query={query} engine=\"{engine}\" seconds={seconds:.6}{note}"
    );
}

/// Parses `--scale N`, `--max-scale N`, `--repeats N`, `--customers N`,
/// `--threads N`, `--json PATH` from argv with defaults; unknown flags
/// abort with usage.
pub struct Args {
    pub scale: u32,
    pub max_scale: u32,
    pub repeats: usize,
    pub customers: u32,
    /// Worker threads for both engines (1 = serial, 0 = machine).
    pub threads: usize,
    /// Optional path for a machine-readable JSON results file.
    pub json: Option<String>,
}

impl Args {
    pub fn parse(default_scale: u32, default_max: u32) -> Args {
        let mut args = Args {
            scale: default_scale,
            max_scale: default_max,
            repeats: 3,
            customers: 100,
            threads: 1,
            json: None,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let need_value = |i: usize| {
                argv.get(i + 1)
                    .unwrap_or_else(|| {
                        eprintln!("missing value for {}", argv[i]);
                        std::process::exit(2);
                    })
                    .parse::<u64>()
                    .unwrap_or_else(|_| {
                        eprintln!("bad value for {}", argv[i]);
                        std::process::exit(2);
                    })
            };
            match argv[i].as_str() {
                "--scale" => {
                    args.scale = need_value(i) as u32;
                    i += 2;
                }
                "--max-scale" => {
                    args.max_scale = need_value(i) as u32;
                    i += 2;
                }
                "--repeats" => {
                    args.repeats = need_value(i) as usize;
                    i += 2;
                }
                "--customers" => {
                    args.customers = need_value(i) as u32;
                    i += 2;
                }
                "--threads" => {
                    args.threads = need_value(i) as usize;
                    i += 2;
                }
                "--json" => {
                    let path = argv.get(i + 1).unwrap_or_else(|| {
                        eprintln!("missing value for --json");
                        std::process::exit(2);
                    });
                    args.json = Some(path.clone());
                    i += 2;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--scale N] [--max-scale N] [--repeats N] [--customers N] \
                         [--threads N] [--json PATH]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag `{other}`; see --help");
                    std::process::exit(2);
                }
            }
        }
        args
    }

    /// The scale sweep 1, 2, 4, … up to `max_scale`.
    pub fn sweep(&self) -> Vec<u32> {
        let mut out = Vec::new();
        let mut s = 1;
        while s <= self.max_scale {
            out.push(s);
            s *= 2;
        }
        out
    }

    /// An [`Emitter`] honouring this invocation's `--json` flag. The
    /// report records the *resolved* worker count (`--threads 0` means
    /// "use the machine"), so results files compare like against like.
    pub fn emitter(&self) -> Emitter {
        Emitter {
            json_path: self.json.clone(),
            threads: fdb_exec::effective_threads(self.threads),
            repeats: self.repeats,
            rows: Vec::new(),
        }
    }
}

/// Prints the greppable rows and, when `--json PATH` was given, records
/// them for a machine-readable results file (the perf-trajectory
/// format: `BENCH_s1.json` in the repository root is the recorded
/// baseline).
#[derive(Debug)]
pub struct Emitter {
    json_path: Option<String>,
    threads: usize,
    repeats: usize,
    rows: Vec<JsonRow>,
}

#[derive(Debug)]
struct JsonRow {
    figure: String,
    scale: u32,
    query: String,
    engine: String,
    /// Configuration tag distinguishing otherwise identical rows in one
    /// file (the threads sweep uses `t1`/`t2`/…); empty = untagged, and
    /// untagged rows serialise exactly as before the field existed.
    tag: String,
    seconds: f64,
    note: String,
}

impl Emitter {
    /// An emitter that never writes a file — for tests of the results
    /// format (see [`crate::perf`]).
    pub fn for_tests(threads: usize, repeats: usize) -> Emitter {
        Emitter {
            json_path: None,
            threads,
            repeats,
            rows: Vec::new(),
        }
    }

    /// Prints one row and records it for the JSON report.
    pub fn row(
        &mut self,
        figure: &str,
        scale: u32,
        query: &str,
        engine: &str,
        seconds: f64,
        note: &str,
    ) {
        self.row_tagged(figure, scale, query, engine, "", seconds, note);
    }

    /// [`Emitter::row`] with a configuration tag: tagged rows keep a
    /// distinct perfgate identity (`crate::perf::PerfRow::key`), so one
    /// results file can hold the same query at several configurations
    /// (e.g. a `--threads` sweep) without the rows shadowing each other.
    #[allow(clippy::too_many_arguments)]
    pub fn row_tagged(
        &mut self,
        figure: &str,
        scale: u32,
        query: &str,
        engine: &str,
        tag: &str,
        seconds: f64,
        note: &str,
    ) {
        let note_with_tag = if tag.is_empty() {
            note.to_string()
        } else {
            format!("tag={tag} {note}").trim_end().to_string()
        };
        print_row(figure, scale, query, engine, seconds, &note_with_tag);
        self.rows.push(JsonRow {
            figure: figure.to_string(),
            scale,
            query: query.to_string(),
            engine: engine.to_string(),
            tag: tag.to_string(),
            seconds,
            note: note.to_string(),
        });
    }

    /// Renders the recorded rows as a JSON document.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"repeats\": {},", self.repeats);
        let _ = writeln!(out, "  \"rows\": [");
        for (i, r) in self.rows.iter().enumerate() {
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            // Untagged rows omit the field entirely, keeping the format
            // byte-compatible with baselines recorded before tags.
            let tag = if r.tag.is_empty() {
                String::new()
            } else {
                format!("\"tag\": \"{}\", ", json_escape(&r.tag))
            };
            let _ = writeln!(
                out,
                "    {{\"figure\": \"{}\", \"scale\": {}, \"query\": \"{}\", \
                 \"engine\": \"{}\", {}\"seconds\": {:.6}, \"note\": \"{}\"}}{comma}",
                json_escape(&r.figure),
                r.scale,
                json_escape(&r.query),
                json_escape(&r.engine),
                tag,
                r.seconds,
                json_escape(&r.note),
            );
        }
        let _ = writeln!(out, "  ]");
        out.push('}');
        out.push('\n');
        out
    }

    /// Writes the JSON report if `--json PATH` was given; call last.
    pub fn finish(self) {
        if let Some(path) = &self.json_path {
            std::fs::write(path, self.to_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            println!("# json results written to {path}");
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_repeats() {
        let mut n = 0;
        let (r, t) = median_secs(3, || {
            n += 1;
            n
        });
        assert_eq!(r, 3);
        assert!(t >= 0.0);
    }

    #[test]
    fn time_secs_returns_result() {
        let (v, t) = time_secs(|| 40 + 2);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
    }

    #[test]
    fn emitter_renders_escaped_json() {
        let mut e = Emitter {
            json_path: None,
            threads: 4,
            repeats: 3,
            rows: Vec::new(),
        };
        e.row("5", 1, "Q1", "FDB f/o", 0.001234, "singletons=\"7\"");
        e.row("5", 1, "Q1", "RDB sort", 0.01, "");
        let json = e.to_json();
        assert!(json.contains("\"threads\": 4"), "{json}");
        assert!(json.contains("\"engine\": \"FDB f/o\""), "{json}");
        assert!(json.contains("singletons=\\\"7\\\""), "{json}");
        assert!(json.contains("\"seconds\": 0.001234"), "{json}");
        // A comma after the first row object, none after the last.
        assert_eq!(json.matches("\"}},").count(), 0);
        assert_eq!(json.matches("\"}\n").count(), 1);
        assert_eq!(json.matches("\"},\n").count(), 1);
    }

    #[test]
    fn tagged_rows_render_tag_field() {
        let mut e = Emitter::for_tests(4, 3);
        e.row_tagged("T", 1, "Q1", "FDB", "t4", 0.002, "rows=5");
        e.row("T", 1, "Q1", "FDB", 0.002, "rows=5");
        let json = e.to_json();
        assert!(json.contains("\"tag\": \"t4\""), "{json}");
        // Untagged rows keep the pre-tag serialisation.
        assert_eq!(json.matches("\"tag\"").count(), 1, "{json}");
    }

    #[test]
    fn json_escape_handles_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
