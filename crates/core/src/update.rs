//! Delta maintenance: single-tuple `INSERT`/`DELETE` on an [`FRep`]
//! without rebuilding it.
//!
//! [`FRep::from_relation`] is *purely syntactic* recursive grouping: at
//! every f-tree node the rows are partitioned by that node's attribute
//! value (in a sorted map) and each group recurses into the children.
//! Consequently the factorisation of `rel ∪ {t}` differs from the
//! factorisation of `rel` only along the root-to-leaf **spine** that
//! `t`'s attribute values select — at each level either `t`'s value
//! already has an entry (recurse into its children) or a fresh entry is
//! spliced into the sorted run with a singleton chain for the rest of
//! the subtree. Deletion is the mirror image. The mutators below edit
//! exactly that spine:
//!
//! * every level of the spine appends one **new union record** whose
//!   untouched entries are carried over **by id** (`EntrySpec::from_rec`
//!   — same value index, same kid range, no value clones), reusing the
//!   staged pipeline executor's append-only in-place machinery;
//! * everything off the spine — the overwhelming majority of the arena —
//!   is shared untouched, and `Arena::note_shared` accounts the
//!   avoided copies just like the in-place f-plan operators do;
//! * the memoised count annotations are dropped on the mutated wrapper
//!   only (`FRep::update_parts`); an `Arc`-shared snapshot the wrapper
//!   was cloned from keeps serving its own index.
//!
//! Because the edit mimics `from_relation`'s grouping step by step, the
//! mutated representation is **structurally identical** (same unions,
//! same entry order, same shapes — [`FRep::same_data`]) to a full
//! rebuild from the updated relation; the differential suite
//! (`tests/update_differential.rs`) holds the engine to that bar
//! byte-for-byte.
//!
//! ## Set semantics and branching trees
//!
//! The f-rep denotes a *set* of tuples. `insert` of a represented tuple
//! and `delete` of an absent one are no-ops returning `false`.
//!
//! At a branching node the entry's child unions form a product, so a
//! tuple's sub-values cannot be removed independently: deletion
//! recurses into child `i` only when every *sibling* subtree is a
//! singleton (for the root list: into root `i` only when every other
//! root is a singleton), and drops an entry only when **all** its child
//! subtrees are singletons. Under the join dependencies the f-tree
//! asserts (the same precondition [`FRep::from_relation`] needs to be
//! exact, Prop. 1 of the paper), this reproduces the rebuilt grouping
//! exactly. When a deletion's result violates those dependencies the
//! f-tree cannot represent it; both the delta path and a rebuild then
//! over-approximate by the identical grouping, so the two stay
//! structurally equal even there. Path f-trees — tries, the shape the
//! engine builds for base relations — never hit this case.

use fdb_relational::Value;

use crate::error::{FdbError, Result};
use crate::frep::{Arena, EntrySpec, FRep, UnionId};
use crate::ftree::{FTree, NodeId, NodeLabel};

/// Per f-tree node (indexed by `NodeId::idx`): the position of the
/// node's attribute in an update row laid out per [`FRep::schema`].
fn col_map(rep: &FRep) -> Result<Vec<usize>> {
    let schema = rep.schema();
    let ftree = rep.ftree();
    let live = ftree.live_nodes();
    let size = live.iter().map(|n| n.idx() + 1).max().unwrap_or(0);
    let mut map = vec![usize::MAX; size];
    for n in live {
        match &ftree.node(n).label {
            NodeLabel::Atomic(attrs) if attrs.len() == 1 => {
                let pos = schema.position(attrs[0]).ok_or_else(|| {
                    FdbError::Unresolved(format!(
                        "f-tree attribute {} missing from the view schema",
                        attrs[0]
                    ))
                })?;
                map[n.idx()] = pos;
            }
            _ => {
                return Err(FdbError::InvalidOperator(
                    "insert/delete need single-attribute atomic nodes".into(),
                ))
            }
        }
    }
    Ok(map)
}

fn check_arity(rep: &FRep, row: &[Value]) -> Result<()> {
    let arity = rep.schema().arity();
    if row.len() != arity {
        return Err(FdbError::InvalidOperator(format!(
            "update row has {} values, view schema has {arity}",
            row.len()
        )));
    }
    Ok(())
}

impl FRep {
    /// True iff `row` (laid out per [`FRep::schema`]) is in the
    /// represented relation: one binary search per f-tree node down the
    /// spine — O(depth · log fanout), no enumeration.
    pub fn contains(&self, row: &[Value]) -> Result<bool> {
        check_arity(self, row)?;
        let cols = col_map(self)?;
        let arena = self.arena_ref();
        Ok(self
            .root_ids()
            .iter()
            .all(|&r| contains_union(arena, r, row, &cols)))
    }

    /// Inserts `row` (laid out per [`FRep::schema`]); returns `true` if
    /// it was new, `false` if already represented (set semantics).
    ///
    /// Cost is O(depth · (log fanout + spine width)): one rewritten
    /// union per level, every untouched fragment shared by id. Any
    /// memoised count index on *this wrapper* is dropped; snapshots
    /// this wrapper was cloned from are untouched (copy-on-write).
    pub fn insert(&mut self, row: &[Value]) -> Result<bool> {
        check_arity(self, row)?;
        let cols = col_map(self)?;
        let (tree, arena, roots) = self.update_parts();
        let mut changed = false;
        for r in roots.iter_mut() {
            if let Some(new_id) = insert_union(arena, tree, *r, row, &cols) {
                *r = new_id;
                changed = true;
            }
        }
        debug_assert!(self.check_invariants().is_ok());
        Ok(changed)
    }

    /// Deletes `row` (laid out per [`FRep::schema`]); returns `true` if
    /// it was represented, `false` otherwise (set semantics, no-op on
    /// absent rows). Same spine-rewrite cost and copy-on-write
    /// discipline as [`FRep::insert`]; see the module docs for the
    /// branching-tree rule.
    pub fn delete(&mut self, row: &[Value]) -> Result<bool> {
        check_arity(self, row)?;
        if !self.contains(row)? {
            return Ok(false);
        }
        let cols = col_map(self)?;
        let (_tree, arena, roots) = self.update_parts();
        let sing: Vec<bool> = roots.iter().map(|&r| is_singleton(arena, r)).collect();
        let n = roots.len();
        for (i, root) in roots.iter_mut().enumerate() {
            if !(0..n).filter(|&j| j != i).all(|j| sing[j]) {
                continue;
            }
            match delete_union(arena, *root, row, &cols) {
                Deleted::Emptied => {
                    let node = arena.urec(*root).node;
                    *root = arena.empty_union(node);
                }
                Deleted::Rewritten(id) => *root = id,
                Deleted::Unchanged => {}
            }
        }
        debug_assert!(self.check_invariants().is_ok());
        Ok(true)
    }
}

fn contains_union(arena: &Arena, uid: UnionId, row: &[Value], cols: &[usize]) -> bool {
    let rec = arena.urec(uid);
    let Some(abs) = arena.find_entry(uid, &row[cols[rec.node.idx()]]) else {
        return false;
    };
    let e = arena.erec(abs);
    (0..e.kids_len).all(|k| contains_union(arena, arena.kid_at(e.kids_start + k), row, cols))
}

/// One union and every subtree below it represent exactly one tuple.
fn is_singleton(arena: &Arena, uid: UnionId) -> bool {
    let rec = arena.urec(uid);
    if rec.len != 1 {
        return false;
    }
    let e = arena.erec(rec.start);
    (0..e.kids_len).all(|k| is_singleton(arena, arena.kid_at(e.kids_start + k)))
}

/// Inserts `row`'s projection into the subtree under `uid`. Returns the
/// rewritten union's id, or `None` when the projection was already
/// fully represented (nothing changed).
fn insert_union(
    arena: &mut Arena,
    tree: &FTree,
    uid: UnionId,
    row: &[Value],
    cols: &[usize],
) -> Option<UnionId> {
    let rec = arena.urec(uid);
    let node = rec.node;
    let v = &row[cols[node.idx()]];
    match arena.search_entry(uid, v) {
        Ok(abs) => {
            // Value present: recurse into the children; rewrite this
            // union only if some child actually changed.
            let phys = abs - rec.start;
            let e = arena.erec(abs);
            let mut new_kids: Vec<UnionId> = (0..e.kids_len)
                .map(|k| arena.kid_at(e.kids_start + k))
                .collect();
            let mut any = false;
            for nk in new_kids.iter_mut() {
                if let Some(id) = insert_union(arena, tree, *nk, row, cols) {
                    *nk = id;
                    any = true;
                }
            }
            if !any {
                return None;
            }
            let mut specs = Vec::with_capacity(rec.len as usize);
            for i in 0..rec.len {
                if i == phys {
                    specs.push(arena.entry_shared_val(e.val, &new_kids));
                } else {
                    specs.push(EntrySpec::from_rec(arena.erec(rec.start + i)));
                }
            }
            arena.note_shared(rec.len.saturating_sub(1) as u64);
            Some(arena.push_union(node, &specs))
        }
        Err(ins) => {
            // Fresh value: splice a new entry (with a singleton chain
            // below it) into the sorted run. Handles the empty union of
            // an empty representation's root as the `ins == len == 0`
            // case.
            let fresh = fresh_entry(arena, tree, node, row, cols);
            let mut specs = Vec::with_capacity(rec.len as usize + 1);
            for i in 0..ins {
                specs.push(EntrySpec::from_rec(arena.erec(rec.start + i)));
            }
            specs.push(fresh);
            for i in ins..rec.len {
                specs.push(EntrySpec::from_rec(arena.erec(rec.start + i)));
            }
            arena.note_shared(rec.len as u64);
            Some(arena.push_union(node, &specs))
        }
    }
}

/// A brand-new entry for `node` carrying `row`'s projection as a chain
/// of singleton unions — the shape `from_relation` gives a one-row
/// group.
fn fresh_entry(
    arena: &mut Arena,
    tree: &FTree,
    node: NodeId,
    row: &[Value],
    cols: &[usize],
) -> EntrySpec {
    let children = tree.node(node).children.clone();
    let kids: Vec<UnionId> = children
        .iter()
        .map(|&c| {
            let spec = fresh_entry(arena, tree, c, row, cols);
            arena.push_union(c, &[spec])
        })
        .collect();
    arena.entry(node, row[cols[node.idx()]].clone(), &kids)
}

enum Deleted {
    /// The union lost its last entry (representable only at a root).
    Emptied,
    Rewritten(UnionId),
    Unchanged,
}

/// Deletes `row`'s projection from the subtree under `uid`, assuming it
/// is present (checked by [`FRep::contains`] up front — a partial
/// recursive edit on an absent tuple would corrupt the spine).
fn delete_union(arena: &mut Arena, uid: UnionId, row: &[Value], cols: &[usize]) -> Deleted {
    let rec = arena.urec(uid);
    let node = rec.node;
    let v = &row[cols[node.idx()]];
    let Some(abs) = arena.find_entry(uid, v) else {
        debug_assert!(
            false,
            "delete_union: entry vanished under a contains() check"
        );
        return Deleted::Unchanged;
    };
    let phys = abs - rec.start;
    let e = arena.erec(abs);
    let kids: Vec<UnionId> = (0..e.kids_len)
        .map(|k| arena.kid_at(e.kids_start + k))
        .collect();
    let sing: Vec<bool> = kids.iter().map(|&k| is_singleton(arena, k)).collect();
    if sing.iter().all(|&s| s) {
        // The entry's whole group is this one tuple: drop the entry.
        if rec.len == 1 {
            return Deleted::Emptied;
        }
        let mut specs = Vec::with_capacity(rec.len as usize - 1);
        for i in 0..rec.len {
            if i != phys {
                specs.push(EntrySpec::from_rec(arena.erec(rec.start + i)));
            }
        }
        arena.note_shared(rec.len as u64 - 1);
        return Deleted::Rewritten(arena.push_union(node, &specs));
    }
    // Group survives: recurse into exactly the children whose siblings
    // are all singletons (see module docs).
    let mut new_kids = kids.clone();
    let mut any = false;
    for k in 0..kids.len() {
        if !(0..kids.len()).filter(|&j| j != k).all(|j| sing[j]) {
            continue;
        }
        match delete_union(arena, kids[k], row, cols) {
            Deleted::Rewritten(id) => {
                new_kids[k] = id;
                any = true;
            }
            Deleted::Unchanged => {}
            Deleted::Emptied => {
                // A recursion target is the unique non-singleton child,
                // which cannot lose its last entry.
                debug_assert!(false, "delete_union: non-singleton child emptied");
            }
        }
    }
    if !any {
        return Deleted::Unchanged;
    }
    let mut specs = Vec::with_capacity(rec.len as usize);
    for i in 0..rec.len {
        if i == phys {
            specs.push(arena.entry_shared_val(e.val, &new_kids));
        } else {
            specs.push(EntrySpec::from_rec(arena.erec(rec.start + i)));
        }
    }
    arena.note_shared(rec.len.saturating_sub(1) as u64);
    Deleted::Rewritten(arena.push_union(node, &specs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_relational::{Catalog, Relation, Schema};

    fn v(i: i64) -> Value {
        Value::Int(i)
    }

    /// R(a, b, c) as a path trie a → b → c.
    fn path_fixture(rows: &[[i64; 3]]) -> (FRep, Relation) {
        let mut catalog = Catalog::new();
        let a = catalog.intern("a");
        let b = catalog.intern("b");
        let c = catalog.intern("c");
        let schema = Schema::new(vec![a, b, c]);
        let rel = Relation::from_rows(
            schema,
            rows.iter().map(|r| r.iter().copied().map(v).collect()),
        );
        let rep = FRep::from_relation(&rel, FTree::path(&[a, b, c])).unwrap();
        (rep, rel)
    }

    /// Branching tree a → {b, c}: groups must satisfy the join
    /// dependency a →→ b | c for exactness.
    fn branch_fixture(rows: &[[i64; 3]]) -> (FRep, Relation) {
        let mut catalog = Catalog::new();
        let a = catalog.intern("a");
        let b = catalog.intern("b");
        let c = catalog.intern("c");
        let schema = Schema::new(vec![a, b, c]);
        let rel = Relation::from_rows(
            schema,
            rows.iter().map(|r| r.iter().copied().map(v).collect()),
        );
        let mut tree = FTree::new();
        let na = tree.add_node(NodeLabel::Atomic(vec![a]), None);
        tree.add_node(NodeLabel::Atomic(vec![b]), Some(na));
        tree.add_node(NodeLabel::Atomic(vec![c]), Some(na));
        tree.add_dep([a, b, c]);
        let rep = FRep::from_relation(&rel, tree).unwrap();
        (rep, rel)
    }

    fn rebuild(rep: &FRep, rel: &Relation) -> FRep {
        FRep::from_relation(rel, rep.ftree().clone()).unwrap()
    }

    #[test]
    fn insert_matches_rebuild_on_path() {
        let (mut rep, rel) = path_fixture(&[[1, 10, 100], [1, 20, 200], [3, 10, 100]]);
        for row in [[2i64, 15, 150], [1, 10, 101], [0, 1, 2], [9, 9, 9]] {
            let row: Vec<Value> = row.iter().copied().map(v).collect();
            assert!(rep.insert(&row).unwrap());
            assert!(rep.contains(&row).unwrap());
        }
        let mut rel2 = rel.clone();
        for row in [[2i64, 15, 150], [1, 10, 101], [0, 1, 2], [9, 9, 9]] {
            rel2.push_row(&row.iter().copied().map(v).collect::<Vec<_>>());
        }
        let fresh = rebuild(&rep, &rel2);
        assert!(rep.same_data(&fresh), "delta insert diverged from rebuild");
        assert_eq!(rep.flatten(), fresh.flatten());
        rep.check_invariants().unwrap();
    }

    #[test]
    fn insert_of_present_row_is_noop() {
        let (mut rep, _) = path_fixture(&[[1, 10, 100], [2, 20, 200]]);
        let before = rep.flatten();
        let row: Vec<Value> = [1, 10, 100].iter().map(|&i| v(i)).collect();
        assert!(!rep.insert(&row).unwrap());
        assert_eq!(rep.flatten(), before);
    }

    #[test]
    fn insert_into_empty_rep() {
        let (seed, _) = path_fixture(&[[1, 1, 1]]);
        let mut rep = FRep::empty(seed.ftree().clone());
        assert!(rep.is_empty());
        let row: Vec<Value> = [5, 6, 7].iter().map(|&i| v(i)).collect();
        assert!(rep.insert(&row).unwrap());
        assert!(!rep.is_empty());
        assert_eq!(rep.tuple_count(), 1);
        assert!(rep.contains(&row).unwrap());
        rep.check_invariants().unwrap();
    }

    #[test]
    fn delete_matches_rebuild_on_path() {
        let rows = [[1i64, 10, 100], [1, 10, 101], [1, 20, 200], [3, 30, 300]];
        let (mut rep, rel) = path_fixture(&rows);
        // Delete one leaf of a shared prefix, then a whole chain.
        for (kill, keep) in [(1usize, 3usize), (3, 2)] {
            let row: Vec<Value> = rows[kill].iter().map(|&i| v(i)).collect();
            assert!(rep.delete(&row).unwrap());
            assert!(!rep.contains(&row).unwrap());
            assert_eq!(rep.tuple_count(), keep);
        }
        let rel2 = Relation::from_rows(
            rel.schema().clone(),
            [rows[0], rows[2]]
                .iter()
                .map(|r| r.iter().copied().map(v).collect::<Vec<_>>()),
        );
        let fresh = rebuild(&rep, &rel2);
        assert!(rep.same_data(&fresh), "delta delete diverged from rebuild");
        assert_eq!(rep.flatten(), fresh.flatten());
        rep.check_invariants().unwrap();
    }

    #[test]
    fn delete_of_absent_row_is_noop() {
        let (mut rep, _) = path_fixture(&[[1, 10, 100]]);
        let before = rep.flatten();
        // Absent at every level of the spine.
        for row in [[2i64, 10, 100], [1, 11, 100], [1, 10, 99]] {
            let row: Vec<Value> = row.iter().copied().map(v).collect();
            assert!(!rep.delete(&row).unwrap());
        }
        assert_eq!(rep.flatten(), before);
    }

    #[test]
    fn delete_to_empty_and_reinsert() {
        let (mut rep, _) = path_fixture(&[[1, 10, 100]]);
        let row: Vec<Value> = [1, 10, 100].iter().map(|&i| v(i)).collect();
        assert!(rep.delete(&row).unwrap());
        assert!(rep.is_empty());
        assert_eq!(rep.tuple_count(), 0);
        rep.check_invariants().unwrap();
        assert!(rep.insert(&row).unwrap());
        assert_eq!(rep.tuple_count(), 1);
        assert!(rep.contains(&row).unwrap());
    }

    #[test]
    fn branching_tree_insert_and_jd_safe_delete() {
        // Two groups, each a product: a=1 → {10,20}×{100}, a=2 → {30}×{300}.
        let (mut rep, rel) = branch_fixture(&[[1, 10, 100], [1, 20, 100], [2, 30, 300]]);
        // Insert keeps the group a product: add b=15 under a=1.
        let ins: Vec<Value> = [1, 15, 100].iter().map(|&i| v(i)).collect();
        assert!(rep.insert(&ins).unwrap());
        let mut rel2 = rel.clone();
        rel2.push_row(&ins);
        let fresh = rebuild(&rep, &rel2);
        assert!(rep.same_data(&fresh));
        // JD-safe delete: removing (2,30,300) kills a singleton group.
        let del: Vec<Value> = [2, 30, 300].iter().map(|&i| v(i)).collect();
        assert!(rep.delete(&del).unwrap());
        assert!(!rep.contains(&del).unwrap());
        let rel3 = Relation::from_rows(
            rel.schema().clone(),
            [[1i64, 10, 100], [1, 20, 100], [1, 15, 100]]
                .iter()
                .map(|r| r.iter().copied().map(v).collect::<Vec<_>>()),
        );
        let fresh = rebuild(&rep, &rel3);
        assert!(rep.same_data(&fresh));
        rep.check_invariants().unwrap();
    }

    #[test]
    fn branching_delete_matches_rebuild_even_off_product() {
        // 2×2 product under a=1; deleting one tuple leaves a set the
        // tree cannot represent — delta and rebuild must over-
        // approximate identically (module docs).
        let rows = [[1i64, 10, 100], [1, 10, 200], [1, 20, 100], [1, 20, 200]];
        let (mut rep, rel) = branch_fixture(&rows);
        let del: Vec<Value> = rows[0].iter().map(|&i| v(i)).collect();
        assert!(rep.delete(&del).unwrap());
        let rel2 = Relation::from_rows(
            rel.schema().clone(),
            rows[1..]
                .iter()
                .map(|r| r.iter().copied().map(v).collect::<Vec<_>>()),
        );
        let fresh = FRep::from_relation(&rel2, rep.ftree().clone()).unwrap();
        assert!(rep.same_data(&fresh));
    }

    #[test]
    fn cow_snapshot_unaffected_by_mutation() {
        let (rep, _) = path_fixture(&[[1, 10, 100], [2, 20, 200]]);
        // Memoise the snapshot's count index, then mutate a clone.
        let snapshot = std::sync::Arc::new(rep);
        assert_eq!(snapshot.tuple_count(), 2);
        let _ = snapshot.flatten();
        let mut next = FRep::clone(&snapshot);
        let row: Vec<Value> = [3, 30, 300].iter().map(|&i| v(i)).collect();
        assert!(next.insert(&row).unwrap());
        // Old snapshot still serves the pre-write state.
        assert_eq!(snapshot.tuple_count(), 2);
        assert!(!snapshot.contains(&row).unwrap());
        assert_eq!(next.tuple_count(), 3);
        assert!(next.contains(&row).unwrap());
    }

    #[test]
    fn mutation_invalidates_memoised_counts() {
        let (mut rep, _) = path_fixture(&[[1, 10, 100], [2, 20, 200]]);
        // Force the count index (seek path builds it).
        let spec = crate::enumerate::EnumSpec::all_preorder(rep.ftree());
        let _ = crate::enumerate::DirectCursor::new(&rep, &spec, 1).unwrap();
        assert!(rep.has_count_index());
        let row: Vec<Value> = [3, 30, 300].iter().map(|&i| v(i)).collect();
        rep.insert(&row).unwrap();
        assert!(
            !rep.has_count_index(),
            "stale count index survived a mutation"
        );
        assert_eq!(rep.tuple_count(), 3);
        // And the rebuilt index reflects the post-write state.
        let spec = crate::enumerate::EnumSpec::all_preorder(rep.ftree());
        let mut cur = crate::enumerate::DirectCursor::new(&rep, &spec, 2).unwrap();
        assert_eq!(cur.next_row().unwrap()[0], v(3));
    }

    #[test]
    fn spine_rewrite_shares_untouched_fragments() {
        let rows: Vec<[i64; 3]> = (0..100).map(|i| [i, i * 10, i * 100]).collect();
        let (mut rep, _) = path_fixture(&rows);
        let before = rep.stats();
        let row: Vec<Value> = [50, 505, 5050].iter().map(|&i| v(i)).collect();
        assert!(rep.insert(&row).unwrap());
        let after = rep.stats();
        // One new union record per spine level (plus the fresh chain),
        // not a rebuilt arena: the union table grows by O(depth).
        assert!(
            after.unions <= before.unions + 6,
            "union table grew by {} records for one insert",
            after.unions - before.unions
        );
        assert!(
            after.copies_avoided > before.copies_avoided,
            "no fragment sharing recorded"
        );
        // Only the spine's values are fresh: one new value at the
        // mutated level plus the fresh chain below it.
        assert!(after.values <= before.values + 3);
    }

    #[test]
    fn multi_root_forest_insert_delete() {
        // Forest {a} ⊥ {b}: the rep is the product of two root unions.
        let mut catalog = Catalog::new();
        let a = catalog.intern("a");
        let b = catalog.intern("b");
        let mut tree = FTree::new();
        tree.add_node(NodeLabel::Atomic(vec![a]), None);
        tree.add_node(NodeLabel::Atomic(vec![b]), None);
        tree.add_dep([a]);
        tree.add_dep([b]);
        let rel = Relation::from_rows(
            Schema::new(vec![a, b]),
            [[1i64, 10]]
                .iter()
                .map(|r| r.iter().map(|&i| v(i)).collect()),
        );
        let mut rep = FRep::from_relation(&rel, tree).unwrap();
        // Insert (1, 20): b-root gains an entry, a-root is unchanged.
        let row: Vec<Value> = vec![v(1), v(20)];
        assert!(rep.insert(&row).unwrap());
        assert_eq!(rep.tuple_count(), 2);
        // Delete (1, 20): the other root is a singleton, so the b-side
        // entry goes.
        assert!(rep.delete(&row).unwrap());
        assert_eq!(rep.tuple_count(), 1);
        assert!(rep.contains(&[v(1), v(10)]).unwrap());
        rep.check_invariants().unwrap();
    }

    #[test]
    fn random_churn_stays_byte_identical_to_rebuild() {
        let (mut rep, rel) = path_fixture(&[[1, 10, 100]]);
        let mut truth: Vec<Vec<Value>> = rel.rows().map(|r| r.to_vec()).collect();
        let mut seed = 0x5eedu64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for step in 0..200 {
            let insert = truth.is_empty() || rng() % 3 != 0;
            if insert {
                let row: Vec<Value> = vec![
                    v((rng() % 7) as i64),
                    v((rng() % 7) as i64),
                    v((rng() % 7) as i64),
                ];
                let fresh = !truth.contains(&row);
                assert_eq!(rep.insert(&row).unwrap(), fresh, "step {step}");
                if fresh {
                    truth.push(row);
                }
            } else {
                let victim = truth.remove(rng() % truth.len());
                assert!(rep.delete(&victim).unwrap(), "step {step}");
            }
            assert_eq!(rep.tuple_count(), truth.len(), "step {step}");
        }
        let rel2 = Relation::from_rows(rel.schema().clone(), truth.iter().cloned());
        let fresh = rebuild(&rep, &rel2);
        assert!(rep.same_data(&fresh), "churn diverged from rebuild");
        assert_eq!(rep.flatten().canonical(), fresh.flatten().canonical());
        rep.check_invariants().unwrap();
    }
}
