//! Cost-based choice among the physical `ORDER BY` strategies.
//!
//! Three ways exist to produce ordered (and LIMIT-truncated) output from
//! a factorisation:
//!
//! 1. **restructure + stream** — swap until Theorem 2 holds, then
//!    enumerate with constant delay (§4.2). Pays the swaps' intermediate
//!    representations up front; streaming `k` rows afterwards is free.
//! 2. **collect-sort-cut** — enumerate the unrestructured result into a
//!    flat relation, stable-sort, truncate. Pays `O(N · log N)` time and
//!    `O(N)` memory in the *flat* result size `N`.
//! 3. **heap top-k** ([`crate::topk`]) — fold the unordered enumeration
//!    through a size-`k` heap. Pays `O(N · log k)` time and `O(k)`
//!    memory; needs a LIMIT to be meaningful. With an OFFSET `m` the
//!    heap widens to `m + k` and the first `m` rows are dropped.
//! 4. **direct access** — when the factorisation realises the order,
//!    seek straight to the `m`-th tuple by binary-searching the
//!    memoised subtree-count annotations (`O(depth · log fanout)`),
//!    then stream the `k` requested rows with constant delay. The only
//!    strategy whose cost is independent of the offset depth.
//!
//! The chooser prices each strategy in the paper's currency — the size
//! bounds of the representations a plan materialises ([`tree_cost`]) plus
//! the enumeration-side work — and picks the cheapest. Estimates use only
//! the f-tree and the base-relation [`Stats`], so the choice is
//! deterministic across executors and thread counts (a property the
//! differential suites rely on).

use crate::ftree::{FTree, NodeLabel};
use crate::optim::cost::{tree_cost, Stats};
use crate::plan::{apply_to_tree, FPlan};
use fdb_relational::AttrId;

/// Which physical ordering strategy the cost model selects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderChoice {
    /// Realise the order in the factorisation and stream (Theorem 2).
    Stream,
    /// Realise the order, then *seek* to the OFFSET via the subtree
    /// count annotations and stream only the requested page.
    Direct,
    /// Bounded-heap top-(m+k) over the unrestructured enumeration.
    Heap,
    /// Materialise, stable-sort, cut the page out.
    Sort,
}

/// Everything the chooser looks at.
#[derive(Clone, Copy, Debug)]
pub struct OrderCostInputs {
    /// Cost of the plan that realises the order in-tree ([`plan_cost`]),
    /// or `None` when no such plan exists (e.g. ordering by a derived
    /// `avg` column, or consolidation failed).
    pub stream_plan_cost: Option<f64>,
    /// Cost of the plan that leaves the order unrealised.
    pub unordered_plan_cost: f64,
    /// Estimated enumerated rows of the unordered plan ([`estimate_rows`]).
    pub est_rows: f64,
    /// The LIMIT, if any.
    pub k: Option<usize>,
    /// The OFFSET (rows skipped before the first returned row; 0 = none).
    pub offset: usize,
    /// Seek cost of the count-annotated direct-access path
    /// (≈ depth · log fanout), or `None` when direct access is
    /// ineligible: no order-realising plan, a result shape without a
    /// tuple cursor (grouped on-the-fly aggregation), or no offset to
    /// skip (plain streaming is then strictly cheaper).
    pub direct_seek_cost: Option<f64>,
    /// Output row width in columns (weights the per-row materialisation).
    pub row_width: usize,
}

/// Picks the cheapest strategy. Without a LIMIT or OFFSET the in-tree
/// realisation always wins when it exists (the full output must be
/// produced anyway, and streaming it sorted beats an extra
/// `O(N · log N)` sort); with a LIMIT the swap overhead competes against
/// `N · log(m+k)` heap work and `N · log N + N` sort work. With an
/// OFFSET `m`, sequential streaming additionally enumerates-and-discards
/// `m` rows, so for deep offsets the count-annotated seek (whose cost is
/// independent of `m`) takes over.
pub fn choose_order_strategy(inputs: &OrderCostInputs) -> OrderChoice {
    let w = inputs.row_width.max(1) as f64;
    let lg = |x: f64| x.max(2.0).log2();
    let n = inputs.est_rows.max(1.0);
    let m = (inputs.offset as f64).min(n);
    // Rows the page actually returns.
    let kf = match inputs.k {
        Some(k) => (k as f64).min((n - m).max(0.0)),
        None => (n - m).max(0.0),
    };
    if inputs.k.is_none() && inputs.offset == 0 {
        return match inputs.stream_plan_cost {
            Some(_) => OrderChoice::Stream,
            None => OrderChoice::Sort,
        };
    }
    // Each enumerated row costs its width (the emit into the row buffer)
    // before the heap can reject it or the sort can store it — charging
    // only the comparison term would overprice a swap (one materialised
    // record ≈ one emitted value, in the size-bound currency) and push
    // the chooser to a heap pass even when streaming after one cheap
    // swap is several times faster end to end.
    let heap = inputs.unordered_plan_cost + n * (lg(m + kf + 1.0) + w) + (m + kf) * w;
    let sort = inputs.unordered_plan_cost + n * (lg(n) + w) + n * w;
    let mut best = if inputs.k.is_some() && heap <= sort {
        (OrderChoice::Heap, heap)
    } else {
        (OrderChoice::Sort, sort)
    };
    if let Some(cs) = inputs.stream_plan_cost {
        // Sequential streaming enumerates (and discards) the m skipped
        // rows before the kf returned ones.
        let stream = cs + (m + kf) * w;
        if stream <= best.1 {
            best = (OrderChoice::Stream, stream);
        }
        if let Some(seek) = inputs.direct_seek_cost {
            let direct = cs + seek + kf * w;
            if direct < best.1 {
                best = (OrderChoice::Direct, direct);
            }
        }
    }
    best.0
}

/// Prices a plan by the representations it materialises: the sum of the
/// f-tree size bound after every operator (the paper's §5.1 metric, also
/// used by the greedy-vs-exhaustive ablation).
pub fn plan_cost(tree0: &FTree, plan: &FPlan, stats: &Stats) -> f64 {
    let mut tree = tree0.clone();
    let mut total = 0.0;
    for op in &plan.ops {
        if apply_to_tree(&mut tree, op).is_err() {
            // A plan that cannot even be simulated prices as unusable.
            return f64::MAX;
        }
        total += tree_cost(&tree, stats);
    }
    total
}

/// Estimated number of enumerated output rows for a result over `tree`:
/// the tight flat-size bound from the fractional edge cover of the
/// relevant attribute classes — the group-by classes for grouped
/// aggregates (one row per group), all atomic classes otherwise.
pub fn estimate_rows(tree: &FTree, stats: &Stats, group_by: &[AttrId], is_aggregate: bool) -> f64 {
    if is_aggregate && group_by.is_empty() {
        return 1.0;
    }
    let mut classes: Vec<Vec<AttrId>> = Vec::new();
    if is_aggregate {
        let mut nodes = Vec::new();
        for &g in group_by {
            match tree.node_of_attr(g) {
                Some(n) if !nodes.contains(&n) => {
                    nodes.push(n);
                    if let NodeLabel::Atomic(class) = &tree.node(n).label {
                        classes.push(class.clone());
                    } else {
                        classes.push(vec![g]);
                    }
                }
                Some(_) => {}
                // Defensive: an attribute the plan lost prices as its own
                // singleton class.
                None => classes.push(vec![g]),
            }
        }
    } else {
        for n in tree.live_nodes() {
            if let NodeLabel::Atomic(class) = &tree.node(n).label {
                classes.push(class.clone());
            }
        }
    }
    stats.bound_for_classes(&classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(stream: Option<f64>, unordered: f64, n: f64, k: Option<usize>) -> OrderCostInputs {
        OrderCostInputs {
            stream_plan_cost: stream,
            unordered_plan_cost: unordered,
            est_rows: n,
            k,
            offset: 0,
            direct_seek_cost: None,
            row_width: 3,
        }
    }

    fn paged(
        stream: Option<f64>,
        unordered: f64,
        n: f64,
        k: Option<usize>,
        offset: usize,
        seek: Option<f64>,
    ) -> OrderCostInputs {
        OrderCostInputs {
            offset,
            direct_seek_cost: seek,
            ..inputs(stream, unordered, n, k)
        }
    }

    #[test]
    fn no_limit_prefers_stream_when_realisable() {
        assert_eq!(
            choose_order_strategy(&inputs(Some(1e9), 1.0, 1e6, None)),
            OrderChoice::Stream
        );
        assert_eq!(
            choose_order_strategy(&inputs(None, 1.0, 1e6, None)),
            OrderChoice::Sort
        );
    }

    #[test]
    fn expensive_restructuring_loses_to_heap_under_limit() {
        // Swaps would materialise ~100x the unordered plan: with a small
        // k the heap pass over N rows is far cheaper.
        let choice = choose_order_strategy(&inputs(Some(1e8), 1e6, 1e5, Some(10)));
        assert_eq!(choice, OrderChoice::Heap);
    }

    #[test]
    fn free_realisation_beats_heap_under_limit() {
        // The order is already realised (no extra swaps: equal plan
        // costs): streaming k rows beats an N-row heap pass.
        let choice = choose_order_strategy(&inputs(Some(1e4), 1e4, 1e5, Some(10)));
        assert_eq!(choice, OrderChoice::Stream);
    }

    #[test]
    fn heap_beats_sort_whenever_k_is_small() {
        for n in [10.0, 1e3, 1e6] {
            let choice = choose_order_strategy(&inputs(None, 0.0, n, Some(5)));
            assert_eq!(choice, OrderChoice::Heap, "n={n}");
        }
    }

    #[test]
    fn deep_offset_prefers_direct_seek_over_streaming() {
        // OFFSET 90k of 100k rows, LIMIT 10: discarding 90k enumerated
        // rows dwarfs a logarithmic seek.
        let choice =
            choose_order_strategy(&paged(Some(1e4), 1e4, 1e5, Some(10), 90_000, Some(60.0)));
        assert_eq!(choice, OrderChoice::Direct);
        // Same page without the seek option: streaming still beats the
        // flat passes (they enumerate all N rows either way).
        let choice = choose_order_strategy(&paged(Some(1e4), 1e4, 1e5, Some(10), 90_000, None));
        assert_eq!(choice, OrderChoice::Stream);
    }

    #[test]
    fn zero_offset_never_picks_direct() {
        // With nothing to skip the seek is pure overhead; the engine
        // passes `None`, but even a quoted seek cost must lose to the
        // tie-broken stream.
        let choice = choose_order_strategy(&paged(Some(1e4), 1e4, 1e5, Some(10), 0, Some(60.0)));
        assert_eq!(choice, OrderChoice::Stream);
    }

    #[test]
    fn offset_without_limit_is_priced() {
        // OFFSET-only page at 99% depth: direct access returns the 1%
        // tail without enumerating the 99% prefix.
        let choice = choose_order_strategy(&paged(Some(1e4), 1e4, 1e5, None, 99_000, Some(60.0)));
        assert_eq!(choice, OrderChoice::Direct);
        // No realising plan at all: only the sort can serve the page.
        let choice = choose_order_strategy(&paged(None, 1e4, 1e5, None, 99_000, None));
        assert_eq!(choice, OrderChoice::Sort);
    }

    #[test]
    fn expensive_restructuring_still_loses_to_flat_passes_with_offset() {
        // The order-realising plan costs 100× the flat plan: even a free
        // seek cannot amortise it for a shallow page over few rows.
        let choice = choose_order_strategy(&paged(Some(1e8), 1e6, 1e5, Some(10), 50, Some(10.0)));
        assert_eq!(choice, OrderChoice::Heap);
    }

    #[test]
    fn estimate_rows_bounds_groups() {
        use fdb_relational::AttrId;
        let a = AttrId(0);
        let b = AttrId(1);
        let mut stats = Stats::new();
        stats.add_relation([a, b], 100);
        let tree = FTree::path(&[a, b]);
        // Grouping by `a`: at most 100 groups.
        let g = estimate_rows(&tree, &stats, &[a], true);
        assert!((g - 100.0).abs() < 1e-6, "got {g}");
        // Full aggregation: one row.
        assert_eq!(estimate_rows(&tree, &stats, &[], true), 1.0);
        // SPJ: the flat bound.
        assert!(estimate_rows(&tree, &stats, &[], false) >= 100.0);
    }
}
