//! Bounded-heap top-k selection — the `ORDER BY … LIMIT k` strategy that
//! touches neither a restructured factorisation nor a full materialised
//! result.
//!
//! The restructure-then-stream path (§4.2) can blow the representation up
//! before the first tuple streams, and collect-sort-cut materialises the
//! *entire* flat result only to throw all but `k` rows away. [`TopK`]
//! instead folds the unordered enumeration into a size-`k` binary
//! max-heap: every candidate row is compared against the current worst
//! kept row and either discarded or swapped in. Peak auxiliary memory is
//! `O(k · row)` — independent of the flat result size — and total work is
//! `O(N · log k)` comparisons over `N` enumerated rows.
//!
//! ## Determinism
//!
//! The heap orders candidates by the sort key *and then by arrival
//! sequence number*, which makes its output **identical** to a stable
//! sort followed by truncation: among rows with equal keys, the earliest
//! enumerated rows win and they are emitted in enumeration order. Since
//! enumeration order over a factorisation is deterministic (and
//! bit-identical across executors and thread counts), two runs of the
//! same query produce byte-identical results even when ties straddle the
//! LIMIT boundary.

use fdb_relational::{SortDir, Value};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One kept row: its extracted key (with per-column direction), its
/// arrival sequence number, and the full output row.
struct Candidate {
    key: Vec<(Value, SortDir)>,
    seq: usize,
    row: Vec<Value>,
}

impl Candidate {
    /// Lexicographic comparison under the per-column directions, ties
    /// broken by arrival order (earlier rows sort first).
    fn order(&self, other: &Self) -> Ordering {
        for ((va, dir), (vb, _)) in self.key.iter().zip(&other.key) {
            match dir.apply(va.cmp(vb)) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        self.seq.cmp(&other.seq)
    }
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.order(other) == Ordering::Equal
    }
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.order(other)
    }
}

/// A bounded top-k accumulator over output rows.
///
/// Push every (already filtered) row of the unordered enumeration, then
/// take the `k` smallest — under the query's `ORDER BY` directions — in
/// their final output order via [`TopK::into_rows`].
pub struct TopK {
    k: usize,
    /// Column position and direction of each (deduplicated) sort key
    /// within the pushed rows.
    keys: Vec<(usize, SortDir)>,
    /// Max-heap: the root is the worst kept candidate, evicted first.
    heap: BinaryHeap<Candidate>,
    seq: usize,
    bytes_held: usize,
    peak_bytes: usize,
}

impl TopK {
    /// A top-k accumulator keeping `k` rows ordered by the row columns at
    /// `keys` positions (first key decides first).
    pub fn new(k: usize, keys: Vec<(usize, SortDir)>) -> Self {
        TopK {
            k,
            keys,
            heap: BinaryHeap::with_capacity(k.saturating_add(1).min(1 << 20)),
            seq: 0,
            bytes_held: 0,
            peak_bytes: 0,
        }
    }

    /// Rows offered so far (kept or rejected).
    pub fn rows_seen(&self) -> usize {
        self.seq
    }

    /// Peak bytes of heap payload held at any point — size-based, like
    /// [`crate::frep::FRep::data_bytes`]: `O(k · row)` by construction.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// `row` payload bytes for the size-based accounting (key columns are
    /// duplicated into the extracted key).
    fn row_bytes(&self, row_len: usize) -> usize {
        (row_len + self.keys.len()) * std::mem::size_of::<Value>()
    }

    /// True iff `row` would currently be kept. Runs without allocating —
    /// the fast path that rejects most rows once the heap is warm.
    fn beats_worst(&self, row: &[Value]) -> bool {
        let Some(worst) = self.heap.peek() else {
            return true;
        };
        if self.heap.len() < self.k {
            return true;
        }
        for (&(pos, dir), (wv, _)) in self.keys.iter().zip(&worst.key) {
            match dir.apply(row[pos].cmp(wv)) {
                Ordering::Equal => continue,
                Ordering::Less => return true,
                Ordering::Greater => return false,
            }
        }
        // Key-equal with the worst kept row: the kept row arrived earlier
        // and wins the stable tie-break.
        false
    }

    /// Offers one row; keeps it iff it is among the `k` best seen so far.
    pub fn push(&mut self, row: &[Value]) {
        let seq = self.seq;
        self.seq += 1;
        if self.k == 0 || !self.beats_worst(row) {
            return;
        }
        let key: Vec<(Value, SortDir)> = self
            .keys
            .iter()
            .map(|&(pos, dir)| (row[pos].clone(), dir))
            .collect();
        self.heap.push(Candidate {
            key,
            seq,
            row: row.to_vec(),
        });
        self.bytes_held += self.row_bytes(row.len());
        self.peak_bytes = self.peak_bytes.max(self.bytes_held);
        if self.heap.len() > self.k {
            if let Some(evicted) = self.heap.pop() {
                self.bytes_held -= self.row_bytes(evicted.row.len());
            }
        }
    }

    /// The kept rows in final output order (sorted by key, ties in
    /// arrival order) — identical to a stable sort + truncate at `k`.
    pub fn into_rows(self) -> Vec<Vec<Value>> {
        self.heap
            .into_sorted_vec()
            .into_iter()
            .map(|c| c.row)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_relational::{Relation, Schema, SortKey};

    fn attr(i: u32) -> fdb_relational::AttrId {
        fdb_relational::AttrId(i)
    }

    /// Pseudo-random rows (no external rng needed): a linear-congruential
    /// walk over small domains to force plenty of ties.
    fn rows(n: usize) -> Vec<Vec<Value>> {
        let mut x = 0x2545F491u64;
        (0..n)
            .map(|i| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                vec![
                    Value::Int((x >> 33) as i64 % 5),
                    Value::Int(i as i64),
                    if x % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Int((x >> 13) as i64 % 3)
                    },
                ]
            })
            .collect()
    }

    /// Reference: stable sort, truncate at k.
    fn sort_cut(mut data: Vec<Vec<Value>>, keys: &[(usize, SortDir)], k: usize) -> Vec<Vec<Value>> {
        data.sort_by(|a, b| {
            for &(pos, dir) in keys {
                match dir.apply(a[pos].cmp(&b[pos])) {
                    Ordering::Equal => continue,
                    o => return o,
                }
            }
            Ordering::Equal
        });
        data.truncate(k);
        data
    }

    #[test]
    fn matches_stable_sort_cut_with_ties_and_nulls() {
        let data = rows(200);
        for k in [0, 1, 3, 7, 50, 200, 500] {
            for keys in [
                vec![(0, SortDir::Asc)],
                vec![(0, SortDir::Desc)],
                vec![(2, SortDir::Asc), (0, SortDir::Desc)],
                vec![(2, SortDir::Desc)],
            ] {
                let mut topk = TopK::new(k, keys.clone());
                for r in &data {
                    topk.push(r);
                }
                assert_eq!(topk.rows_seen(), data.len());
                assert_eq!(
                    topk.into_rows(),
                    sort_cut(data.clone(), &keys, k),
                    "k={k} keys={keys:?}"
                );
            }
        }
    }

    #[test]
    fn peak_memory_is_bounded_by_k() {
        let keys = vec![(0, SortDir::Asc), (1, SortDir::Desc)];
        let small = {
            let mut t = TopK::new(10, keys.clone());
            for r in rows(100) {
                t.push(&r);
            }
            t.peak_bytes()
        };
        let large = {
            let mut t = TopK::new(10, keys);
            for r in rows(10_000) {
                t.push(&r);
            }
            t.peak_bytes()
        };
        // 100x more input, identical peak: O(k·row), not O(N).
        assert_eq!(small, large);
        assert!(small > 0);
        // And the bound really is (k+1) rows of (3 cols + 2 key cols).
        assert!(small <= 11 * 5 * std::mem::size_of::<Value>());
    }

    #[test]
    fn agrees_with_relation_sort_by_keys() {
        // The comparator must be the very comparator `Relation::sort_by_keys`
        // uses — including NULLS LAST under Asc / first under Desc.
        let a = attr(0);
        let b = attr(1);
        let data = rows(64)
            .into_iter()
            .map(|r| vec![r[2].clone(), r[1].clone()])
            .collect::<Vec<_>>();
        let mut rel = Relation::from_rows(Schema::new(vec![a, b]), data.clone());
        rel.sort_by_keys(&[SortKey::desc(a), SortKey::asc(b)]);
        let keys = vec![(0, SortDir::Desc), (1, SortDir::Asc)];
        let mut topk = TopK::new(9, keys);
        for r in &data {
            topk.push(r);
        }
        let got = topk.into_rows();
        let want: Vec<Vec<Value>> = rel.rows().take(9).map(|r| r.to_vec()).collect();
        assert_eq!(got, want);
    }
}
