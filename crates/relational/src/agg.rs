//! Aggregation function specifications, shared by the relational baselines
//! and (re-exported) by the factorised engine.
//!
//! The paper considers `sum`, `count`, `min` and `max`; `avg` is recovered as
//! the pair `(sum, count)` (§2, §3.2.4). [`AggFunc`] is the logical function
//! as written in a query; [`AggSpec`] pairs it with its output attribute,
//! matching the `̟G; α←F` notation.

use crate::attr::{AttrId, Catalog};
use crate::expr::CmpOp;
use crate::value::{Number, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A logical aggregation function over one attribute (or none, for `count`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Number of tuples in the group.
    Count,
    /// Sum of the attribute's values.
    Sum(AttrId),
    /// Minimum of the attribute's values.
    Min(AttrId),
    /// Maximum of the attribute's values.
    Max(AttrId),
    /// Average of the attribute's values; evaluated as `(sum, count)`.
    Avg(AttrId),
    /// Number of distinct non-NULL values of the attribute.
    CountDistinct(AttrId),
    /// Product of the attribute's non-NULL values (bag semantics).
    Product(AttrId),
    /// `1` if any non-NULL value satisfies `value θ c`, else `0`.
    Exists(AttrId, CmpOp, i64),
    /// `1` if every non-NULL value satisfies `value θ c` (vacuously `1`).
    Forall(AttrId, CmpOp, i64),
    /// The `k` largest non-NULL values (bag semantics), descending, as a
    /// `Tup`; `NULL` when the group has no non-NULL input.
    TopK(AttrId, usize),
}

impl AggFunc {
    /// The aggregated attribute, if any (`count` has none).
    pub fn attr(&self) -> Option<AttrId> {
        match self {
            AggFunc::Count => None,
            AggFunc::Sum(a)
            | AggFunc::Min(a)
            | AggFunc::Max(a)
            | AggFunc::Avg(a)
            | AggFunc::CountDistinct(a)
            | AggFunc::Product(a)
            | AggFunc::Exists(a, _, _)
            | AggFunc::Forall(a, _, _)
            | AggFunc::TopK(a, _) => Some(*a),
        }
    }

    /// True for the aggregates whose result depends on *which* distinct
    /// input values occur, not only on decomposable per-subtree partials
    /// — the factorised planner must keep their attribute raw until the
    /// final group-level evaluation.
    pub fn distinct_sensitive(&self) -> bool {
        matches!(self, AggFunc::CountDistinct(_) | AggFunc::TopK(..))
    }

    /// Renders the function with attribute names from `catalog`.
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> AggFuncDisplay<'a> {
        AggFuncDisplay {
            func: self,
            catalog,
        }
    }

    /// Derived name used when a query does not alias the aggregate.
    pub fn derived_name(&self, catalog: &Catalog) -> String {
        match self {
            AggFunc::Count => "count(*)".to_string(),
            AggFunc::Sum(a) => format!("sum({})", catalog.name(*a)),
            AggFunc::Min(a) => format!("min({})", catalog.name(*a)),
            AggFunc::Max(a) => format!("max({})", catalog.name(*a)),
            AggFunc::Avg(a) => format!("avg({})", catalog.name(*a)),
            AggFunc::CountDistinct(a) => format!("count(distinct {})", catalog.name(*a)),
            AggFunc::Product(a) => format!("product({})", catalog.name(*a)),
            AggFunc::Exists(a, op, c) => {
                format!("exists({} {} {c})", catalog.name(*a), op.symbol())
            }
            AggFunc::Forall(a, op, c) => {
                format!("forall({} {} {c})", catalog.name(*a), op.symbol())
            }
            AggFunc::TopK(a, k) => format!("top_k({}, {k})", catalog.name(*a)),
        }
    }
}

/// Helper for [`AggFunc::display`].
pub struct AggFuncDisplay<'a> {
    func: &'a AggFunc,
    catalog: &'a Catalog,
}

impl fmt::Display for AggFuncDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.func.derived_name(self.catalog))
    }
}

/// One aggregate of a query: `α ← F`, i.e. function plus output attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AggSpec {
    pub func: AggFunc,
    pub output: AttrId,
}

impl AggSpec {
    pub fn new(func: AggFunc, output: AttrId) -> Self {
        AggSpec { func, output }
    }
}

/// Running accumulator for one aggregation function.
///
/// Used by the relational baselines' scan-based aggregation; the factorised
/// engine evaluates aggregates recursively on factorisations instead
/// (`fdb-core::agg`).
#[derive(Clone, Debug)]
pub enum Accumulator {
    Count(u64),
    Sum(Number),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: Number, count: u64 },
    CountDistinct(BTreeSet<Value>),
    Product(Option<Number>),
    Exists { op: CmpOp, rhs: i64, found: bool },
    Forall { op: CmpOp, rhs: i64, ok: bool },
    TopK { k: usize, vals: Vec<Value> },
}

impl Accumulator {
    /// Fresh accumulator for `func`.
    pub fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => Accumulator::Count(0),
            AggFunc::Sum(_) => Accumulator::Sum(Number::ZERO),
            AggFunc::Min(_) => Accumulator::Min(None),
            AggFunc::Max(_) => Accumulator::Max(None),
            AggFunc::Avg(_) => Accumulator::Avg {
                sum: Number::ZERO,
                count: 0,
            },
            AggFunc::CountDistinct(_) => Accumulator::CountDistinct(BTreeSet::new()),
            AggFunc::Product(_) => Accumulator::Product(None),
            AggFunc::Exists(_, op, rhs) => Accumulator::Exists {
                op,
                rhs,
                found: false,
            },
            AggFunc::Forall(_, op, rhs) => Accumulator::Forall { op, rhs, ok: true },
            AggFunc::TopK(_, k) => Accumulator::TopK {
                k,
                vals: Vec::new(),
            },
        }
    }

    /// Folds one input value into the accumulator.
    ///
    /// For `count` the value is ignored (every tuple counts once); for the
    /// others it must be numeric or ordered as required. The PR-7
    /// aggregates (`count(distinct …)`, `product`, `exists`/`forall`,
    /// `top_k`) ignore NULL inputs, matching the PostgreSQL default.
    pub fn update(&mut self, value: Option<&Value>) {
        match self {
            Accumulator::Count(n) => *n += 1,
            Accumulator::Sum(acc) => {
                let v = value.expect("sum needs a value");
                let n = v.as_number().expect("sum over non-numeric value");
                *acc = acc.add(n);
            }
            Accumulator::Min(m) => {
                let v = value.expect("min needs a value");
                if m.as_ref().is_none_or(|cur| v < cur) {
                    *m = Some(v.clone());
                }
            }
            Accumulator::Max(m) => {
                let v = value.expect("max needs a value");
                if m.as_ref().is_none_or(|cur| v > cur) {
                    *m = Some(v.clone());
                }
            }
            Accumulator::Avg { sum, count } => {
                let v = value.expect("avg needs a value");
                let n = v.as_number().expect("avg over non-numeric value");
                *sum = sum.add(n);
                *count += 1;
            }
            Accumulator::CountDistinct(set) => {
                let v = value.expect("count(distinct) needs a value");
                if !v.is_null() && !set.contains(v) {
                    set.insert(v.clone());
                }
            }
            Accumulator::Product(acc) => {
                let v = value.expect("product needs a value");
                if v.is_null() {
                    return;
                }
                let n = v.as_number().expect("product over non-numeric value");
                *acc = Some(acc.unwrap_or(Number::Int(1)).mul(n));
            }
            Accumulator::Exists { op, rhs, found } => {
                let v = value.expect("exists needs a value");
                if !v.is_null() && op.eval(v.cmp(&Value::Int(*rhs))) {
                    *found = true;
                }
            }
            Accumulator::Forall { op, rhs, ok } => {
                let v = value.expect("forall needs a value");
                if !v.is_null() && !op.eval(v.cmp(&Value::Int(*rhs))) {
                    *ok = false;
                }
            }
            Accumulator::TopK { k, vals } => {
                let v = value.expect("top_k needs a value");
                if v.is_null() {
                    return;
                }
                vals.push(v.clone());
                // Keep the buffer bounded: prune to the k largest once it
                // doubles. Equal values are interchangeable, so pruning
                // never changes the finished result.
                if vals.len() >= (2 * *k).max(64) {
                    vals.sort_by(|a, b| b.cmp(a));
                    vals.truncate(*k);
                }
            }
        }
    }

    /// Finalises the accumulator into an output value.
    ///
    /// Value-picking aggregates over groups with no (non-NULL) input
    /// finish as `NULL`; `exists`/`forall` finish as their identities
    /// (`0` / vacuous `1`) and `count(distinct …)` as `0`.
    pub fn finish(self) -> Value {
        match self {
            Accumulator::Count(n) => Value::Int(n as i64),
            Accumulator::Sum(acc) => acc.into_value(),
            Accumulator::Min(m) => m.unwrap_or(Value::Null),
            Accumulator::Max(m) => m.unwrap_or(Value::Null),
            Accumulator::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum.to_f64() / count as f64)
                }
            }
            Accumulator::CountDistinct(set) => Value::Int(set.len() as i64),
            Accumulator::Product(acc) => acc.map(Number::into_value).unwrap_or(Value::Null),
            Accumulator::Exists { found, .. } => Value::Int(found as i64),
            Accumulator::Forall { ok, .. } => Value::Int(ok as i64),
            Accumulator::TopK { k, mut vals } => {
                vals.sort_by(|a, b| b.cmp(a));
                vals.truncate(k);
                if vals.is_empty() {
                    Value::Null
                } else {
                    Value::tup(vals)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_accumulates_tuples() {
        let mut acc = Accumulator::new(AggFunc::Count);
        acc.update(None);
        acc.update(None);
        acc.update(None);
        assert_eq!(acc.finish(), Value::Int(3));
    }

    #[test]
    fn sum_widens_to_float() {
        let mut acc = Accumulator::new(AggFunc::Sum(AttrId(0)));
        acc.update(Some(&Value::Int(2)));
        acc.update(Some(&Value::Float(0.5)));
        assert_eq!(acc.finish(), Value::Float(2.5));
    }

    #[test]
    fn min_max_track_extremes() {
        let a = AttrId(0);
        let mut mn = Accumulator::new(AggFunc::Min(a));
        let mut mx = Accumulator::new(AggFunc::Max(a));
        for v in [5, 1, 9, 3] {
            mn.update(Some(&Value::Int(v)));
            mx.update(Some(&Value::Int(v)));
        }
        assert_eq!(mn.finish(), Value::Int(1));
        assert_eq!(mx.finish(), Value::Int(9));
    }

    #[test]
    fn avg_is_sum_over_count() {
        let mut acc = Accumulator::new(AggFunc::Avg(AttrId(0)));
        for v in [1, 2, 3, 4] {
            acc.update(Some(&Value::Int(v)));
        }
        assert_eq!(acc.finish(), Value::Float(2.5));
    }

    #[test]
    fn derived_names() {
        let mut c = Catalog::new();
        let p = c.intern("price");
        assert_eq!(AggFunc::Sum(p).derived_name(&c), "sum(price)");
        assert_eq!(AggFunc::Count.derived_name(&c), "count(*)");
        assert_eq!(AggFunc::Avg(p).display(&c).to_string(), "avg(price)");
        assert_eq!(
            AggFunc::CountDistinct(p).derived_name(&c),
            "count(distinct price)"
        );
        assert_eq!(AggFunc::Product(p).derived_name(&c), "product(price)");
        assert_eq!(
            AggFunc::Exists(p, CmpOp::Gt, 5).derived_name(&c),
            "exists(price > 5)"
        );
        assert_eq!(
            AggFunc::Forall(p, CmpOp::Le, 9).derived_name(&c),
            "forall(price <= 9)"
        );
        assert_eq!(AggFunc::TopK(p, 3).derived_name(&c), "top_k(price, 3)");
    }

    #[test]
    fn count_distinct_ignores_nulls_and_duplicates() {
        let mut acc = Accumulator::new(AggFunc::CountDistinct(AttrId(0)));
        for v in [
            Value::Int(2),
            Value::Int(2),
            Value::Null,
            Value::Int(7),
            Value::Int(2),
        ] {
            acc.update(Some(&v));
        }
        assert_eq!(acc.finish(), Value::Int(2));
        let empty = Accumulator::new(AggFunc::CountDistinct(AttrId(0)));
        assert_eq!(empty.finish(), Value::Int(0));
    }

    #[test]
    fn product_multiplies_and_is_null_on_empty() {
        let mut acc = Accumulator::new(AggFunc::Product(AttrId(0)));
        for v in [Value::Int(2), Value::Null, Value::Int(3), Value::Int(4)] {
            acc.update(Some(&v));
        }
        assert_eq!(acc.finish(), Value::Int(24));
        let empty = Accumulator::new(AggFunc::Product(AttrId(0)));
        assert_eq!(empty.finish(), Value::Null);
    }

    #[test]
    fn exists_and_forall_booleans() {
        let a = AttrId(0);
        let mut ex = Accumulator::new(AggFunc::Exists(a, CmpOp::Gt, 5));
        let mut fa = Accumulator::new(AggFunc::Forall(a, CmpOp::Gt, 5));
        for v in [Value::Int(1), Value::Null, Value::Int(9)] {
            ex.update(Some(&v));
            fa.update(Some(&v));
        }
        assert_eq!(ex.finish(), Value::Int(1));
        assert_eq!(fa.finish(), Value::Int(0), "1 fails the predicate");
        // Empty group: exists is 0, forall vacuously 1.
        assert_eq!(
            Accumulator::new(AggFunc::Exists(a, CmpOp::Gt, 5)).finish(),
            Value::Int(0)
        );
        assert_eq!(
            Accumulator::new(AggFunc::Forall(a, CmpOp::Gt, 5)).finish(),
            Value::Int(1)
        );
    }

    #[test]
    fn top_k_keeps_k_largest_descending() {
        let mut acc = Accumulator::new(AggFunc::TopK(AttrId(0), 3));
        for v in [5, 1, 9, 3, 9, 2] {
            acc.update(Some(&Value::Int(v)));
        }
        acc.update(Some(&Value::Null));
        assert_eq!(
            acc.finish(),
            Value::tup(vec![Value::Int(9), Value::Int(9), Value::Int(5)])
        );
        // Pruning at scale never changes the result.
        let mut big = Accumulator::new(AggFunc::TopK(AttrId(0), 2));
        for v in 0..1000 {
            big.update(Some(&Value::Int(v % 500)));
        }
        assert_eq!(
            big.finish(),
            Value::tup(vec![Value::Int(499), Value::Int(499)])
        );
        assert_eq!(
            Accumulator::new(AggFunc::TopK(AttrId(0), 2)).finish(),
            Value::Null
        );
    }

    #[test]
    fn empty_value_picking_groups_finish_null() {
        assert_eq!(
            Accumulator::new(AggFunc::Min(AttrId(0))).finish(),
            Value::Null
        );
        assert_eq!(
            Accumulator::new(AggFunc::Max(AttrId(0))).finish(),
            Value::Null
        );
        assert_eq!(
            Accumulator::new(AggFunc::Avg(AttrId(0))).finish(),
            Value::Null
        );
    }
}
