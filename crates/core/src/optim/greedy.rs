//! The polynomial-time greedy heuristic of §5.2.
//!
//! Repeatedly, in priority order: (1) execute a permissible selection
//! operator on a highest-placed node; (2) execute a permissible aggregation
//! operator with maximal subject; (3) restructure for a pending selection,
//! choosing the cheapest of lifting one side, the other, or both; (4) lift
//! group-by attributes above non-group parents; (5) fix order-by
//! contradictions; then stop. Step (7) — consolidating the remaining
//! partial aggregates into a single attribute — runs when requested
//! (needed for HAVING and for ordering by the aggregation result).
//!
//! The heuristic plans on a scratch f-tree; every emitted operator is
//! simulated immediately so later operators reference valid node ids.

use crate::agg::partial_funcs;
use crate::error::{FdbError, Result};
use crate::ftree::{AggOp, FTree, NodeId, NodeLabel};
use crate::optim::cost::{tree_cost, Stats};
use crate::orderby;
use crate::plan::{apply_to_tree, FOp, FPlan};
use fdb_relational::{AttrId, Catalog, CmpOp, SortKey, Value};
use std::collections::BTreeSet;

/// What the optimiser must achieve, independent of any engine plumbing.
#[derive(Clone, Debug, Default)]
pub struct QuerySpec {
    /// Pending equality selections `Ai = Bi` (e.g. natural-join conditions).
    pub selections: Vec<(AttrId, AttrId)>,
    /// Constant selections `A θ c`, applied up front (§5.1).
    pub const_preds: Vec<(AttrId, CmpOp, Value)>,
    /// For aggregate-free queries: the attributes to keep.
    pub projection: Option<Vec<AttrId>>,
    /// Group-by attributes `G`.
    pub group_by: Vec<AttrId>,
    /// Final aggregation functions (avg already desugared to sum + count).
    pub final_funcs: Vec<AggOp>,
    /// Output attribute per final function.
    pub final_outputs: Vec<AttrId>,
    /// Order-by keys (over `G` attributes and/or final outputs).
    pub order_by: Vec<SortKey>,
    /// Reduce the aggregate to a single node (§5.2 step 7); required when
    /// ordering/filtering by the aggregation result.
    pub consolidate: bool,
}

impl QuerySpec {
    pub fn is_aggregate(&self) -> bool {
        !self.final_funcs.is_empty()
    }
}

/// Runs the greedy heuristic, returning an executable [`FPlan`].
pub fn greedy(
    tree0: &FTree,
    spec: &QuerySpec,
    stats: &Stats,
    catalog: &mut Catalog,
) -> Result<FPlan> {
    let mut tree = tree0.clone();
    let mut plan = FPlan::new();
    let emit = |tree: &mut FTree, plan: &mut FPlan, op: FOp| -> Result<()> {
        apply_to_tree(tree, &op)?;
        plan.push(op);
        Ok(())
    };

    // Constant selections run on the input factorisation directly.
    for (attr, op, value) in &spec.const_preds {
        emit(
            &mut tree,
            &mut plan,
            FOp::SelectConst {
                attr: *attr,
                op: *op,
                value: value.clone(),
            },
        )?;
    }

    let mut pending: Vec<(AttrId, AttrId)> = spec.selections.clone();
    let mut guard = 0usize;
    loop {
        guard += 1;
        if guard > 10_000 {
            return Err(FdbError::PlanningFailed("greedy did not converge".into()));
        }
        // Drop selections already satisfied by earlier merges/absorbs.
        pending.retain(|&(x, y)| tree.node_of_attr(x) != tree.node_of_attr(y));

        // Step 1: permissible selection operators, highest-placed first.
        if let Some((i, op)) = applicable_selection(&tree, &pending) {
            emit(&mut tree, &mut plan, op)?;
            pending.remove(i);
            continue;
        }
        // Step 2: permissible aggregation operator with maximal subject.
        if spec.is_aggregate() {
            if let Some((parent, targets)) = best_aggregate(&tree, spec, &pending) {
                let funcs = partial_funcs(&tree, &targets, &spec.final_funcs);
                let outputs: Vec<AttrId> = funcs
                    .iter()
                    .map(|f| catalog.fresh(&format!("partial_{}", f.display(catalog))))
                    .collect();
                emit(
                    &mut tree,
                    &mut plan,
                    FOp::Aggregate {
                        parent,
                        targets,
                        funcs,
                        outputs,
                    },
                )?;
                continue;
            }
        }
        // Step 3: restructure for the first pending selection.
        if let Some(&(x, y)) = pending.first() {
            let swaps = cheapest_selection_restructuring(&tree, x, y, stats)?;
            for (p, n) in swaps {
                emit(
                    &mut tree,
                    &mut plan,
                    FOp::Swap {
                        parent: p,
                        child: n,
                    },
                )?;
            }
            continue;
        }
        // Step 4: lift a group attribute above a non-group parent.
        if let Some((p, n)) = group_violation(&tree, &spec.group_by) {
            emit(
                &mut tree,
                &mut plan,
                FOp::Swap {
                    parent: p,
                    child: n,
                },
            )?;
            continue;
        }
        // Step 5: fix an order-by contradiction (keys present in the tree).
        if let Some((p, n)) = order_violation(&tree, &spec.order_by) {
            emit(
                &mut tree,
                &mut plan,
                FOp::Swap {
                    parent: p,
                    child: n,
                },
            )?;
            continue;
        }
        break;
    }

    finish(&mut tree, &mut plan, spec)?;
    Ok(plan)
}

/// Shared finishing phase for both optimisers: step 7 consolidation and
/// the final aggregation for aggregate queries; projection for SPJ
/// queries; then re-established group/order support (steps 4–5).
pub(crate) fn finish(tree: &mut FTree, plan: &mut FPlan, spec: &QuerySpec) -> Result<()> {
    let emit = |tree: &mut FTree, plan: &mut FPlan, op: FOp| -> Result<()> {
        apply_to_tree(tree, &op)?;
        plan.push(op);
        Ok(())
    };
    if spec.is_aggregate() && spec.consolidate {
        // Step 7: single-attribute result.
        let (swaps, parent, targets) = orderby::plan_consolidation(tree, &spec.group_by)?;
        for (p, n) in swaps {
            emit(
                tree,
                plan,
                FOp::Swap {
                    parent: p,
                    child: n,
                },
            )?;
        }
        emit(
            tree,
            plan,
            FOp::Aggregate {
                parent,
                targets,
                funcs: spec.final_funcs.clone(),
                outputs: spec.final_outputs.clone(),
            },
        )?;
        // The consolidated output may participate in ordering (e.g. Q7
        // orders by the revenue aggregate): re-establish Theorem 2. The
        // Theorem 1 check is intentionally absent here — after the final
        // aggregation every group holds exactly one tuple, so grouping is
        // trivial and must not fight the order restructuring (ordering by
        // the aggregate puts its node *above* the group attributes).
        let mut guard = 0usize;
        while let Some((p, n)) = order_violation(tree, &spec.order_by) {
            guard += 1;
            if guard > 10_000 {
                return Err(FdbError::PlanningFailed(
                    "post-consolidation restructuring did not converge".into(),
                ));
            }
            emit(
                tree,
                plan,
                FOp::Swap {
                    parent: p,
                    child: n,
                },
            )?;
        }
    }

    if !spec.is_aggregate() {
        if let Some(proj) = &spec.projection {
            // Remove unwanted attributes, deepest nodes first so most
            // removals are plain leaf drops.
            loop {
                let mut victims: Vec<(usize, AttrId)> = Vec::new();
                for n in tree.live_nodes() {
                    for a in tree.node(n).label.exposed_attrs() {
                        if !proj.contains(&a) {
                            victims.push((tree.depth(n), a));
                        }
                    }
                }
                match victims.into_iter().max_by_key(|&(d, _)| d) {
                    None => break,
                    Some((_, a)) => {
                        emit(tree, plan, FOp::ProjectAway { attr: a })?;
                    }
                }
            }
            // Projection may have disturbed the order support.
            let mut guard = 0usize;
            while let Some((p, n)) = order_violation(tree, &spec.order_by) {
                guard += 1;
                if guard > 10_000 {
                    return Err(FdbError::PlanningFailed(
                        "post-projection restructuring did not converge".into(),
                    ));
                }
                emit(
                    tree,
                    plan,
                    FOp::Swap {
                        parent: p,
                        child: n,
                    },
                )?;
            }
        }
    }
    Ok(())
}

/// Step 1: a merge/absorb whose condition already holds structurally,
/// preferring operators touching the highest-placed (shallowest) node.
pub(crate) fn applicable_selection(
    tree: &FTree,
    pending: &[(AttrId, AttrId)],
) -> Option<(usize, FOp)> {
    let mut best: Option<(usize, usize, FOp)> = None; // (depth, idx, op)
    for (i, &(x, y)) in pending.iter().enumerate() {
        let (Some(nx), Some(ny)) = (tree.node_of_attr(x), tree.node_of_attr(y)) else {
            continue;
        };
        if nx == ny {
            continue;
        }
        let op = if tree.node(nx).parent == tree.node(ny).parent {
            Some(FOp::Merge { a: nx, b: ny })
        } else if tree.is_ancestor(nx, ny) {
            Some(FOp::Absorb { anc: nx, desc: ny })
        } else if tree.is_ancestor(ny, nx) {
            Some(FOp::Absorb { anc: ny, desc: nx })
        } else {
            None
        };
        if let Some(op) = op {
            let depth = tree.depth(nx).min(tree.depth(ny));
            if best.as_ref().is_none_or(|(d, _, _)| depth < *d) {
                best = Some((depth, i, op));
            }
        }
    }
    best.map(|(_, i, op)| (i, op))
}

/// Step 2: the permissible aggregation target with the most atomic
/// attributes. Returns `(parent, sibling subtrees)`.
pub(crate) fn best_aggregate(
    tree: &FTree,
    spec: &QuerySpec,
    pending: &[(AttrId, AttrId)],
) -> Option<(Option<NodeId>, Vec<NodeId>)> {
    // Attributes that must survive: group-by, pending selections, any
    // order-by attribute still atomic in the tree, and the inputs of
    // distinct-sensitive final aggregates (count(distinct)/top_k), whose
    // results cannot be recovered from partial-aggregate singletons.
    let mut blocked: BTreeSet<AttrId> = spec.group_by.iter().copied().collect();
    for &(x, y) in pending {
        blocked.insert(x);
        blocked.insert(y);
    }
    for k in &spec.order_by {
        blocked.insert(k.attr);
    }
    for f in &spec.final_funcs {
        if f.needs_raw_input() {
            blocked.extend(f.attr());
        }
    }
    let mut best: Option<(usize, Option<NodeId>, Vec<NodeId>)> = None;
    let mut consider = |parent: Option<NodeId>, siblings: &[NodeId]| {
        let mut targets = Vec::new();
        let mut atomic_attrs = 0usize;
        let mut useful = false;
        for &c in siblings {
            let attrs = tree.subtree_attrs(c);
            if attrs.iter().any(|a| blocked.contains(a)) {
                continue;
            }
            for m in tree.subtree_nodes(c) {
                match &tree.node(m).label {
                    NodeLabel::Atomic(class) => {
                        atomic_attrs += class.len();
                        useful = true;
                    }
                    NodeLabel::Agg(_) => {
                        if !tree.node(m).children.is_empty() {
                            useful = true;
                        }
                    }
                }
            }
            targets.push(c);
        }
        // Re-aggregating a lone bare aggregate leaf is a no-op; several
        // bare leaves are the consolidation step's job, not step 2's.
        if targets.is_empty() || !useful {
            return;
        }
        if best.as_ref().is_none_or(|(n, _, _)| atomic_attrs > *n) {
            best = Some((atomic_attrs, parent, targets));
        }
    };
    consider(None, tree.roots());
    for n in tree.live_nodes() {
        consider(Some(n), &tree.node(n).children);
    }
    best.map(|(_, p, t)| (p, t))
}

/// Step 3: the cheapest of (a) lifting `x`'s node, (b) lifting `y`'s node,
/// (c) lifting both, until a selection operator becomes applicable. Cost
/// is the sum of intermediate f-tree size bounds, the paper's metric.
fn cheapest_selection_restructuring(
    tree: &FTree,
    x: AttrId,
    y: AttrId,
    stats: &Stats,
) -> Result<Vec<(NodeId, NodeId)>> {
    let nx = tree
        .node_of_attr(x)
        .ok_or_else(|| FdbError::Unresolved(format!("attribute {x} not in f-tree")))?;
    let ny = tree
        .node_of_attr(y)
        .ok_or_else(|| FdbError::Unresolved(format!("attribute {y} not in f-tree")))?;
    let options: [Vec<NodeId>; 3] = [vec![nx], vec![ny], vec![nx, ny]];
    let mut best: Option<(f64, Vec<(NodeId, NodeId)>)> = None;
    for lift_set in options {
        if let Some((cost, swaps)) = simulate_lifting(tree, nx, ny, &lift_set, stats) {
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                best = Some((cost, swaps));
            }
        }
    }
    best.map(|(_, s)| s)
        .ok_or_else(|| FdbError::PlanningFailed("no restructuring lifts the selection".into()))
}

/// Lifts the nodes of `lift_set` round-robin until `nx`/`ny` are siblings
/// or in ancestor-descendant position; returns `(Σ intermediate costs,
/// swap list)` or `None` if this option stalls.
fn simulate_lifting(
    tree: &FTree,
    nx: NodeId,
    ny: NodeId,
    lift_set: &[NodeId],
    stats: &Stats,
) -> Option<(f64, Vec<(NodeId, NodeId)>)> {
    let mut scratch = tree.clone();
    let mut swaps = Vec::new();
    let mut cost = 0.0;
    let applicable = |t: &FTree| {
        t.node(nx).parent == t.node(ny).parent || t.is_ancestor(nx, ny) || t.is_ancestor(ny, nx)
    };
    let mut i = 0usize;
    let mut stalled = 0usize;
    while !applicable(&scratch) {
        if swaps.len() > 2 * scratch.live_nodes().len() + 4 {
            return None;
        }
        let n = lift_set[i % lift_set.len()];
        i += 1;
        match scratch.node(n).parent {
            None => {
                stalled += 1;
                if stalled > lift_set.len() {
                    return None; // every liftee is a root and still nothing
                }
            }
            Some(p) => {
                stalled = 0;
                scratch.swap(p, n).ok()?;
                swaps.push((p, n));
                cost += tree_cost(&scratch, stats);
            }
        }
    }
    Some((cost, swaps))
}

/// Step 4 condition: a node exposing a group attribute whose parent
/// exposes none.
pub(crate) fn group_violation(tree: &FTree, group: &[AttrId]) -> Option<(NodeId, NodeId)> {
    let in_group = |n: NodeId| {
        tree.node(n)
            .label
            .exposed_attrs()
            .iter()
            .any(|a| group.contains(a))
    };
    tree.live_nodes().into_iter().find_map(|n| {
        if in_group(n) {
            tree.node(n)
                .parent
                .filter(|&p| !in_group(p))
                .map(|p| (p, n))
        } else {
            None
        }
    })
}

/// Step 5 condition: an order-by node whose parent is not an earlier
/// order-by node (keys whose attributes are not yet in the tree — pending
/// final outputs — are skipped).
pub(crate) fn order_violation(tree: &FTree, keys: &[SortKey]) -> Option<(NodeId, NodeId)> {
    let nodes: Vec<Option<NodeId>> = keys.iter().map(|k| tree.node_of_attr(k.attr)).collect();
    for (i, &n) in nodes.iter().enumerate() {
        let Some(n) = n else { continue };
        if nodes[..i].contains(&Some(n)) {
            continue; // same class as an earlier key
        }
        if let Some(p) = tree.node(n).parent {
            if !nodes[..i].contains(&Some(p)) {
                return Some((p, n));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frep::FRep;
    use fdb_relational::{Relation, Schema};

    /// T1 rep + stats for the pizzeria join.
    fn t1_rep() -> (Catalog, FRep, Stats) {
        let mut c = Catalog::new();
        let pizza = c.intern("pizza");
        let date = c.intern("date");
        let customer = c.intern("customer");
        let item = c.intern("item");
        let price = c.intern("price");
        let rows: Vec<(&str, i64, &str, &str, i64)> = vec![
            ("Capricciosa", 1, "Mario", "base", 6),
            ("Capricciosa", 1, "Mario", "ham", 1),
            ("Capricciosa", 1, "Mario", "mushrooms", 1),
            ("Capricciosa", 5, "Mario", "base", 6),
            ("Capricciosa", 5, "Mario", "ham", 1),
            ("Capricciosa", 5, "Mario", "mushrooms", 1),
            ("Hawaii", 5, "Lucia", "base", 6),
            ("Hawaii", 5, "Lucia", "ham", 1),
            ("Hawaii", 5, "Lucia", "pineapple", 2),
            ("Hawaii", 5, "Pietro", "base", 6),
            ("Hawaii", 5, "Pietro", "ham", 1),
            ("Hawaii", 5, "Pietro", "pineapple", 2),
            ("Margherita", 2, "Mario", "base", 6),
        ];
        let rel = Relation::from_rows(
            Schema::new(vec![pizza, date, customer, item, price]),
            rows.into_iter().map(|(p, d, cu, i, pr)| {
                vec![
                    Value::str(p),
                    Value::Int(d),
                    Value::str(cu),
                    Value::str(i),
                    Value::Int(pr),
                ]
            }),
        );
        let mut t = FTree::new();
        let n_pizza = t.add_node(NodeLabel::Atomic(vec![pizza]), None);
        let n_date = t.add_node(NodeLabel::Atomic(vec![date]), Some(n_pizza));
        t.add_node(NodeLabel::Atomic(vec![customer]), Some(n_date));
        let n_item = t.add_node(NodeLabel::Atomic(vec![item]), Some(n_pizza));
        t.add_node(NodeLabel::Atomic(vec![price]), Some(n_item));
        t.add_dep([customer, date, pizza]);
        t.add_dep([pizza, item]);
        t.add_dep([item, price]);
        let rep = FRep::from_relation(&rel, t).unwrap();
        let mut stats = Stats::new();
        stats.add_relation([customer, date, pizza], 5);
        stats.add_relation([pizza, item], 7);
        stats.add_relation([item, price], 4);
        (c, rep, stats)
    }

    #[test]
    fn greedy_revenue_per_customer() {
        // Query P of Example 1: ̟customer;sum(price)(R) with a single
        // consolidated output attribute.
        let (mut c, rep, stats) = t1_rep();
        let price = c.lookup("price").unwrap();
        let customer = c.lookup("customer").unwrap();
        let revenue = c.intern("revenue");
        let spec = QuerySpec {
            group_by: vec![customer],
            final_funcs: vec![AggOp::Sum(price)],
            final_outputs: vec![revenue],
            consolidate: true,
            ..Default::default()
        };
        let plan = greedy(rep.ftree(), &spec, &stats, &mut c).unwrap();
        // The plan must start with a partial aggregation (the item-price
        // subtree is aggregatable before any restructuring).
        assert!(
            matches!(plan.ops[0], FOp::Aggregate { .. }),
            "plan: {}",
            plan.display(&c)
        );
        let out = plan.execute(rep).unwrap();
        out.check_invariants().unwrap();
        let flat = out.flatten();
        let rows: Vec<(String, i64)> = flat
            .rows()
            .map(|r| (r[0].as_str().unwrap().to_string(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(
            rows,
            vec![
                ("Lucia".to_string(), 9),
                ("Mario".to_string(), 22),
                ("Pietro".to_string(), 9)
            ]
        );
    }

    #[test]
    fn greedy_group_without_consolidation() {
        // ̟customer,pizza;sum(price): scenario 3 — leave partial
        // aggregates for on-the-fly combination.
        let (mut c, rep, stats) = t1_rep();
        let price = c.lookup("price").unwrap();
        let customer = c.lookup("customer").unwrap();
        let pizza = c.lookup("pizza").unwrap();
        let spec = QuerySpec {
            group_by: vec![customer, pizza],
            final_funcs: vec![AggOp::Sum(price)],
            final_outputs: vec![c.intern("rev")],
            consolidate: false,
            ..Default::default()
        };
        let plan = greedy(rep.ftree(), &spec, &stats, &mut c).unwrap();
        let out = plan.execute(rep).unwrap();
        // Group nodes satisfy Theorem 1 afterwards.
        assert!(crate::enumerate::supports_group(
            out.ftree(),
            &[customer, pizza]
        ));
        // Atomic non-group attributes are gone.
        for n in out.ftree().live_nodes() {
            if let NodeLabel::Atomic(attrs) = &out.ftree().node(n).label {
                for a in attrs {
                    assert!([customer, pizza].contains(a));
                }
            }
        }
    }

    #[test]
    fn greedy_full_aggregate_to_scalar() {
        let (mut c, rep, stats) = t1_rep();
        let price = c.lookup("price").unwrap();
        let total = c.intern("total");
        let spec = QuerySpec {
            final_funcs: vec![AggOp::Sum(price)],
            final_outputs: vec![total],
            consolidate: true,
            ..Default::default()
        };
        let plan = greedy(rep.ftree(), &spec, &stats, &mut c).unwrap();
        let out = plan.execute(rep).unwrap();
        assert_eq!(out.tuple_count(), 1);
        assert_eq!(*out.root(0).entry(0).value(), Value::Int(40));
    }

    #[test]
    fn greedy_order_by_aggregate_output() {
        // Q7-style: order by the aggregation result — requires
        // consolidation plus a swap lifting the aggregate node.
        let (mut c, rep, stats) = t1_rep();
        let price = c.lookup("price").unwrap();
        let customer = c.lookup("customer").unwrap();
        let revenue = c.intern("revenue2");
        let spec = QuerySpec {
            group_by: vec![customer],
            final_funcs: vec![AggOp::Sum(price)],
            final_outputs: vec![revenue],
            order_by: vec![SortKey::desc(revenue)],
            consolidate: true,
            ..Default::default()
        };
        let plan = greedy(rep.ftree(), &spec, &stats, &mut c).unwrap();
        let out = plan.execute(rep).unwrap();
        assert!(crate::enumerate::supports_order(
            out.ftree(),
            &[SortKey::desc(revenue)]
        ));
        let spec2 =
            crate::enumerate::EnumSpec::ordered(out.ftree(), &[SortKey::desc(revenue)]).unwrap();
        let rel = crate::enumerate::TupleIter::new(&out, &spec2)
            .unwrap()
            .projected(&[customer, revenue], None)
            .unwrap();
        let revs: Vec<i64> = rel.rows().map(|r| r[1].as_int().unwrap()).collect();
        assert_eq!(revs, vec![22, 9, 9]);
    }

    #[test]
    fn greedy_spj_projection_and_order() {
        let (mut c, rep, stats) = t1_rep();
        let pizza = c.lookup("pizza").unwrap();
        let item = c.lookup("item").unwrap();
        let spec = QuerySpec {
            projection: Some(vec![pizza, item]),
            order_by: vec![SortKey::asc(item), SortKey::asc(pizza)],
            ..Default::default()
        };
        let plan = greedy(rep.ftree(), &spec, &stats, &mut c).unwrap();
        let out = plan.execute(rep).unwrap();
        let keys = [SortKey::asc(item), SortKey::asc(pizza)];
        assert!(crate::enumerate::supports_order(out.ftree(), &keys));
        let espec = crate::enumerate::EnumSpec::ordered(out.ftree(), &keys).unwrap();
        let rel = crate::enumerate::TupleIter::new(&out, &espec)
            .unwrap()
            .projected(&[item, pizza], None)
            .unwrap();
        assert_eq!(rel.len(), 7);
        assert!(rel.is_sorted_by(&keys));
    }

    #[test]
    fn greedy_join_by_selection() {
        // Two path reps product + selection item = item2 (the FDB join).
        let mut c = Catalog::new();
        let pizza = c.intern("pizza");
        let item = c.intern("item");
        let item2 = c.intern("item2");
        let price = c.intern("price");
        let pizzas = Relation::from_rows(
            Schema::new(vec![pizza, item]),
            [
                ("Hawaii", "base"),
                ("Hawaii", "ham"),
                ("Margherita", "base"),
            ]
            .into_iter()
            .map(|(p, i)| vec![Value::str(p), Value::str(i)]),
        );
        let items = Relation::from_rows(
            Schema::new(vec![item2, price]),
            [("base", 6), ("ham", 1)]
                .into_iter()
                .map(|(i, p)| vec![Value::str(i), Value::Int(p)]),
        );
        let rp = FRep::from_relation(&pizzas, FTree::path(&[pizza, item])).unwrap();
        let ri = FRep::from_relation(&items, FTree::path(&[item2, price])).unwrap();
        let joined = crate::ops::product(rp, ri);
        let mut stats = Stats::new();
        stats.add_relation([pizza, item], 3);
        stats.add_relation([item2, price], 2);
        let total = c.intern("total");
        let spec = QuerySpec {
            selections: vec![(item, item2)],
            group_by: vec![pizza],
            final_funcs: vec![AggOp::Sum(price)],
            final_outputs: vec![total],
            consolidate: true,
            ..Default::default()
        };
        let plan = greedy(joined.ftree(), &spec, &stats, &mut c).unwrap();
        let out = plan.execute(joined).unwrap();
        let flat = out.flatten();
        let rows: Vec<(String, i64)> = flat
            .rows()
            .map(|r| (r[0].as_str().unwrap().to_string(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(
            rows,
            vec![("Hawaii".to_string(), 7), ("Margherita".to_string(), 6)]
        );
    }

    #[test]
    fn greedy_with_const_predicates() {
        let (mut c, rep, stats) = t1_rep();
        let price = c.lookup("price").unwrap();
        let customer = c.lookup("customer").unwrap();
        let rev = c.intern("rev_cheap");
        let spec = QuerySpec {
            const_preds: vec![(price, CmpOp::Le, Value::Int(2))],
            group_by: vec![customer],
            final_funcs: vec![AggOp::Sum(price)],
            final_outputs: vec![rev],
            consolidate: true,
            ..Default::default()
        };
        let plan = greedy(rep.ftree(), &spec, &stats, &mut c).unwrap();
        assert!(matches!(plan.ops[0], FOp::SelectConst { .. }));
        let out = plan.execute(rep).unwrap();
        let flat = out.flatten();
        // Cheap toppings only: Mario 2·(1+1)=4, Lucia 3, Pietro 3.
        let rows: Vec<(String, i64)> = flat
            .rows()
            .map(|r| (r[0].as_str().unwrap().to_string(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(
            rows,
            vec![
                ("Lucia".to_string(), 3),
                ("Mario".to_string(), 4),
                ("Pietro".to_string(), 3)
            ]
        );
    }
}
