//! The RDB baseline engine.
//!
//! A basic main-memory relational engine in the spirit of the paper's
//! Experiment 5: relations are fully materialised, grouping is either
//! sort-based (modelling SQLite, whose grouping the paper found RDB to
//! match closely) or hash-based (modelling PostgreSQL), and plans come from
//! the lazy or eager planner.

use crate::attr::Catalog;
use crate::error::RelError;
use crate::ops::GroupStrategy;
use crate::plan::{execute_with, RelPlan};
use crate::planner::{eager_plan, naive_plan, JoinAggTask};
use crate::relation::Relation;
use crate::schema::Schema;
use std::collections::HashMap;

/// Plan flavour: lazy aggregation (what the off-the-shelf engines did) or
/// eager aggregation (the handcrafted "man" plans of Figure 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanMode {
    Naive,
    Eager,
}

/// A small materialising main-memory relational engine.
#[derive(Clone, Debug)]
pub struct RdbEngine {
    /// Attribute catalog shared with registered relations.
    pub catalog: Catalog,
    relations: HashMap<String, Relation>,
    /// Default grouping strategy for plans that do not pin one.
    pub strategy: GroupStrategy,
    /// Worker threads for grouping and sorting (`1` = serial, the
    /// default; `0` = use the machine). Keeps the FDB-vs-RDB comparison
    /// fair when the factorised engine runs parallel.
    pub threads: usize,
}

impl RdbEngine {
    /// Creates an engine with the given default grouping strategy.
    pub fn new(catalog: Catalog, strategy: GroupStrategy) -> Self {
        RdbEngine {
            catalog,
            relations: HashMap::new(),
            strategy,
            threads: 1,
        }
    }

    /// Registers (or replaces) a base relation under `name`.
    pub fn register(&mut self, name: impl Into<String>, rel: Relation) {
        self.relations.insert(name.into(), rel);
    }

    /// Borrow of a registered relation.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Schemas of all registered relations (input to the planners).
    pub fn schemas(&self) -> HashMap<String, Schema> {
        self.relations
            .iter()
            .map(|(k, v)| (k.clone(), v.schema().clone()))
            .collect()
    }

    /// Plans `task` in the requested mode.
    ///
    /// [`PlanMode::Eager`] falls back to the naive plan when the rewrite
    /// does not apply (mirroring how a real optimiser would).
    pub fn plan(&mut self, task: &JoinAggTask, mode: PlanMode) -> Result<RelPlan, RelError> {
        let schemas = self.schemas();
        match mode {
            PlanMode::Naive => naive_plan(task, &mut self.catalog, &schemas),
            PlanMode::Eager => match eager_plan(task, &mut self.catalog, &schemas) {
                Ok(p) => Ok(p),
                Err(RelError::Unsupported(_)) => naive_plan(task, &mut self.catalog, &schemas),
                Err(e) => Err(e),
            },
        }
    }

    /// Executes a physical plan.
    pub fn execute(&self, plan: &RelPlan) -> Result<Relation, RelError> {
        let threads = fdb_exec::effective_threads(self.threads);
        execute_with(plan, &self.relations, self.strategy, threads)
    }

    /// Plans and executes in one step.
    pub fn run(&mut self, task: &JoinAggTask, mode: PlanMode) -> Result<Relation, RelError> {
        if !task.grouping_sets.is_empty() {
            return self.run_grouping_sets(task, mode);
        }
        let plan = self.plan(task, mode)?;
        self.execute(&plan)
    }

    /// `GROUP BY GROUPING SETS` (and its ROLLUP/CUBE sugar): one
    /// aggregation per set over the same joined data, missing group
    /// columns padded with NULL, results concatenated in declared set
    /// order; HAVING/ORDER BY/LIMIT apply to the combined rows.
    fn run_grouping_sets(
        &mut self,
        task: &JoinAggTask,
        mode: PlanMode,
    ) -> Result<Relation, RelError> {
        let output = task.output_attrs();
        let out_schema = Schema::new(output.clone());
        let mut out = Relation::empty(out_schema.clone());
        for set in &task.grouping_sets {
            let sub = JoinAggTask {
                group_by: set.clone(),
                grouping_sets: Vec::new(),
                having: Vec::new(),
                order_by: Vec::new(),
                limit: None,
                offset: 0,
                ..task.clone()
            };
            let rel = self.run(&sub, mode)?;
            let sub_schema = rel.schema().clone();
            let mut row_buf = Vec::with_capacity(output.len());
            for row in rel.rows() {
                row_buf.clear();
                for &a in &output {
                    match sub_schema.position(a) {
                        Some(p) => row_buf.push(row[p].clone()),
                        None => row_buf.push(crate::value::Value::Null),
                    }
                }
                out.push_row(&row_buf);
            }
        }
        if !task.having.is_empty() {
            out = crate::ops::select(&out, &task.having);
        }
        if !task.order_by.is_empty() {
            out.sort_by_keys_par(&task.order_by, fdb_exec::effective_threads(self.threads));
        }
        if task.limit.is_some() || task.offset > 0 {
            out = crate::ops::page(&out, task.offset, task.limit);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AggFunc, AggSpec};
    use crate::relation::SortKey;
    use crate::value::Value;

    fn engine() -> RdbEngine {
        let mut catalog = Catalog::new();
        let item = catalog.intern("item");
        let price = catalog.intern("price");
        let items = Relation::from_rows(
            Schema::new(vec![item, price]),
            [("base", 6), ("ham", 1), ("mushrooms", 1), ("pineapple", 2)]
                .into_iter()
                .map(|(i, p)| vec![Value::str(i), Value::Int(p)]),
        );
        let mut e = RdbEngine::new(catalog, GroupStrategy::Sort);
        e.register("Items", items);
        e
    }

    #[test]
    fn run_simple_aggregate() {
        let mut e = engine();
        let price = e.catalog.lookup("price").unwrap();
        let total = e.catalog.intern("total");
        let task = JoinAggTask {
            inputs: vec!["Items".into()],
            aggregates: vec![AggSpec::new(AggFunc::Sum(price), total)],
            ..Default::default()
        };
        let out = e.run(&task, PlanMode::Naive).unwrap();
        assert_eq!(out.row(0), &[Value::Int(10)]);
    }

    #[test]
    fn eager_mode_falls_back_for_spj() {
        let mut e = engine();
        let item = e.catalog.lookup("item").unwrap();
        let task = JoinAggTask {
            inputs: vec!["Items".into()],
            projection: Some(vec![item]),
            order_by: vec![SortKey::asc(item)],
            ..Default::default()
        };
        let out = e.run(&task, PlanMode::Eager).unwrap();
        assert_eq!(out.len(), 4);
        assert!(out.is_sorted_by(&[SortKey::asc(item)]));
    }

    #[test]
    fn strategies_give_equal_results() {
        let mut sort_engine = engine();
        let mut hash_engine = sort_engine.clone();
        hash_engine.strategy = GroupStrategy::Hash;
        let price = sort_engine.catalog.lookup("price").unwrap();
        let n = sort_engine.catalog.intern("n");
        hash_engine.catalog = sort_engine.catalog.clone();
        let task = JoinAggTask {
            inputs: vec!["Items".into()],
            group_by: vec![price],
            aggregates: vec![AggSpec::new(AggFunc::Count, n)],
            ..Default::default()
        };
        let a = sort_engine.run(&task, PlanMode::Naive).unwrap().canonical();
        let b = hash_engine.run(&task, PlanMode::Naive).unwrap().canonical();
        assert_eq!(a, b);
    }
}
