//! The scalable benchmark dataset of §6: Orders, Packages, Items.
//!
//! The paper's generator (parameters from §6, Experimental Design):
//! * the number of dates on which orders are placed is `800·s`;
//! * the average number of order dates per customer is `80·s` and the
//!   average number of orders per order date is 2, both binomial;
//! * there are `100·√s` items and `40·√s` packages of `20·√s` items on
//!   average.
//!
//! The customer count is not published; we fix it (default 100) and
//! document the substitution in DESIGN.md. The flat join grows by a factor
//! `≈ 20·√s` (items per package) plus grouping savings over the
//! factorisation over the paper's f-tree `T`
//! (`package → {date → customer, item → price}`), which is the
//! succinctness gap Figures 4–8 measure.
//!
//! Besides the three base relations, the generator builds the factorised
//! materialised view `R1 = Orders ⋈ Packages ⋈ Items` over `T` *directly*
//! (in time linear in the factorisation size), exactly the read-optimised
//! scenario of the experiments — materialising the flat join first would
//! be pointless work the paper's setup also avoids.

use crate::rng::{binomial, distinct_sample};
use fdb_core::frep::{Entry, Union};
use fdb_core::ftree::{FTree, NodeLabel};
use fdb_core::{FRep, Stats};
use fdb_relational::{AttrId, Catalog, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct OrdersConfig {
    /// The paper's scale parameter `s`.
    pub scale: u32,
    /// Number of customers (not published in the paper; see DESIGN.md).
    pub customers: u32,
    /// RNG seed; generation is fully deterministic per seed.
    pub seed: u64,
}

impl Default for OrdersConfig {
    fn default() -> Self {
        OrdersConfig {
            scale: 1,
            customers: 100,
            seed: 0xFDB,
        }
    }
}

impl OrdersConfig {
    /// Convenience constructor at a given scale.
    pub fn at_scale(scale: u32) -> Self {
        OrdersConfig {
            scale,
            ..Default::default()
        }
    }

    pub fn dates(&self) -> u32 {
        800 * self.scale
    }

    pub fn packages(&self) -> u32 {
        (40.0 * (self.scale as f64).sqrt()).ceil() as u32
    }

    pub fn items(&self) -> u32 {
        (100.0 * (self.scale as f64).sqrt()).ceil() as u32
    }

    pub fn items_per_package(&self) -> f64 {
        20.0 * (self.scale as f64).sqrt()
    }
}

/// Attribute handles of the benchmark schema.
#[derive(Clone, Copy, Debug)]
pub struct OrdersAttrs {
    pub customer: AttrId,
    pub date: AttrId,
    pub package: AttrId,
    pub item: AttrId,
    pub price: AttrId,
}

/// The generated database: flat base relations plus the grouped structures
/// from which the factorised view is assembled.
#[derive(Clone, Debug)]
pub struct OrdersDataset {
    pub config: OrdersConfig,
    pub attrs: OrdersAttrs,
    /// Orders(customer, date, package).
    pub orders: Relation,
    /// Packages(package, item).
    pub packages: Relation,
    /// Items(item, price).
    pub items: Relation,
    /// package → date → customers (sorted), only non-empty groups.
    orders_grouped: BTreeMap<u32, BTreeMap<u32, Vec<u32>>>,
    /// package → sorted (item, price).
    package_items: BTreeMap<u32, Vec<(u32, i64)>>,
}

/// Generates the dataset.
pub fn generate(catalog: &mut Catalog, cfg: &OrdersConfig) -> OrdersDataset {
    let attrs = OrdersAttrs {
        customer: catalog.intern("customer"),
        date: catalog.intern("date"),
        package: catalog.intern("package"),
        item: catalog.intern("item"),
        price: catalog.intern("price"),
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n_items = cfg.items();
    let n_packages = cfg.packages();
    let n_dates = cfg.dates();

    // Items(item, price): prices 1..=20.
    let prices: Vec<i64> = (0..n_items).map(|_| rng.gen_range(1..=20)).collect();
    let items = Relation::from_rows(
        Schema::new(vec![attrs.item, attrs.price]),
        prices
            .iter()
            .enumerate()
            .map(|(i, &p)| vec![Value::Int(i as i64), Value::Int(p)]),
    );

    // Packages(package, item): binomial item counts, distinct items.
    let ipp = cfg.items_per_package();
    let p_item = (ipp / n_items as f64).min(1.0);
    let mut package_items: BTreeMap<u32, Vec<(u32, i64)>> = BTreeMap::new();
    let mut package_rows: Vec<Vec<Value>> = Vec::new();
    for p in 0..n_packages {
        let k = binomial(&mut rng, n_items, p_item).max(1);
        let chosen = distinct_sample(&mut rng, n_items, k);
        let entry: Vec<(u32, i64)> = chosen.iter().map(|&i| (i, prices[i as usize])).collect();
        for &(i, _) in &entry {
            package_rows.push(vec![Value::Int(p as i64), Value::Int(i as i64)]);
        }
        package_items.insert(p, entry);
    }
    let packages = Relation::from_rows(Schema::new(vec![attrs.package, attrs.item]), package_rows);

    // Orders(customer, date, package): per customer a binomial number of
    // order dates (mean 80·s = 10% of dates), two orders per order date on
    // average (Binomial(4, ½)).
    let mut orders_grouped: BTreeMap<u32, BTreeMap<u32, Vec<u32>>> = BTreeMap::new();
    let mut order_rows: Vec<Vec<Value>> = Vec::new();
    for c in 0..cfg.customers {
        let k = binomial(&mut rng, n_dates, 0.1);
        let dates = distinct_sample(&mut rng, n_dates, k);
        for d in dates {
            let n_orders = binomial(&mut rng, 4, 0.5);
            let mut chosen: BTreeSet<u32> = BTreeSet::new();
            for _ in 0..n_orders {
                chosen.insert(rng.gen_range(0..n_packages));
            }
            for p in chosen {
                order_rows.push(vec![
                    Value::Int(c as i64),
                    Value::Int(d as i64),
                    Value::Int(p as i64),
                ]);
                orders_grouped
                    .entry(p)
                    .or_default()
                    .entry(d)
                    .or_default()
                    .push(c);
            }
        }
    }
    for dates in orders_grouped.values_mut() {
        for customers in dates.values_mut() {
            customers.sort_unstable();
            customers.dedup();
        }
    }
    let orders = Relation::from_rows(
        Schema::new(vec![attrs.customer, attrs.date, attrs.package]),
        order_rows,
    );

    OrdersDataset {
        config: *cfg,
        attrs,
        orders,
        packages,
        items,
        orders_grouped,
        package_items,
    }
}

impl OrdersDataset {
    /// The paper's f-tree `T`: package → {date → customer, item → price}.
    pub fn paper_ftree(&self) -> FTree {
        let a = &self.attrs;
        let mut t = FTree::new();
        let n_package = t.add_node(NodeLabel::Atomic(vec![a.package]), None);
        let n_date = t.add_node(NodeLabel::Atomic(vec![a.date]), Some(n_package));
        t.add_node(NodeLabel::Atomic(vec![a.customer]), Some(n_date));
        let n_item = t.add_node(NodeLabel::Atomic(vec![a.item]), Some(n_package));
        t.add_node(NodeLabel::Atomic(vec![a.price]), Some(n_item));
        t.add_dep([a.customer, a.date, a.package]);
        t.add_dep([a.package, a.item]);
        t.add_dep([a.item, a.price]);
        t
    }

    /// The factorised materialised view `R1 = Orders ⋈ Packages ⋈ Items`
    /// over [`OrdersDataset::paper_ftree`], built directly from the
    /// generator's grouped structures in time linear in its size.
    pub fn factorised_view(&self) -> FRep {
        let tree = self.paper_ftree();
        let n_package = tree.roots()[0];
        let n_date = tree.node(n_package).children[0];
        let n_customer = tree.node(n_date).children[0];
        let n_item = tree.node(n_package).children[1];
        let n_price = tree.node(n_item).children[0];

        let mut package_entries: Vec<Entry> = Vec::new();
        for (&p, dates) in &self.orders_grouped {
            let Some(item_list) = self.package_items.get(&p) else {
                continue; // no items: dangling in the join
            };
            if item_list.is_empty() {
                continue;
            }
            let date_entries: Vec<Entry> = dates
                .iter()
                .map(|(&d, customers)| Entry {
                    value: Value::Int(d as i64),
                    children: vec![Union {
                        node: n_customer,
                        entries: customers
                            .iter()
                            .map(|&c| Entry {
                                value: Value::Int(c as i64),
                                children: vec![],
                            })
                            .collect(),
                    }],
                })
                .collect();
            let item_entries: Vec<Entry> = item_list
                .iter()
                .map(|&(i, price)| Entry {
                    value: Value::Int(i as i64),
                    children: vec![Union {
                        node: n_price,
                        entries: vec![Entry {
                            value: Value::Int(price),
                            children: vec![],
                        }],
                    }],
                })
                .collect();
            package_entries.push(Entry {
                value: Value::Int(p as i64),
                children: vec![
                    Union {
                        node: n_date,
                        entries: date_entries,
                    },
                    Union {
                        node: n_item,
                        entries: item_entries,
                    },
                ],
            });
        }
        FRep::new(
            tree,
            vec![Union {
                node: n_package,
                entries: package_entries,
            }],
        )
        .expect("generator emits a structurally valid factorisation")
    }

    /// Base-relation statistics for the optimiser's cost metric.
    pub fn stats(&self) -> Stats {
        let a = &self.attrs;
        let mut stats = Stats::new();
        stats.add_relation([a.customer, a.date, a.package], self.orders.len());
        stats.add_relation([a.package, a.item], self.packages.len());
        stats.add_relation([a.item, a.price], self.items.len());
        stats
    }

    /// Cardinality of the flat join, computed without materialising it.
    pub fn flat_join_size(&self) -> usize {
        self.orders_grouped
            .iter()
            .map(|(p, dates)| {
                let items = self.package_items.get(p).map_or(0, Vec::len);
                let orders: usize = dates.values().map(Vec::len).sum();
                orders * items
            })
            .sum()
    }

    /// Materialises the flat join (for the relational baselines), laid out
    /// as (package, date, customer, item, price) — the view column order.
    pub fn join(&self) -> Relation {
        let a = &self.attrs;
        let j1 = fdb_relational::ops::hash_join(&self.orders, &self.packages);
        let j2 = fdb_relational::ops::hash_join(&j1, &self.items);
        j2.project_cols(&[a.package, a.date, a.customer, a.item, a.price])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Catalog, OrdersDataset) {
        let mut c = Catalog::new();
        let cfg = OrdersConfig {
            scale: 1,
            customers: 6,
            seed: 42,
        };
        let ds = generate(&mut c, &cfg);
        (c, ds)
    }

    #[test]
    fn deterministic_per_seed() {
        let mut c1 = Catalog::new();
        let mut c2 = Catalog::new();
        let cfg = OrdersConfig {
            scale: 1,
            customers: 4,
            seed: 7,
        };
        let a = generate(&mut c1, &cfg);
        let b = generate(&mut c2, &cfg);
        assert_eq!(a.orders, b.orders);
        assert_eq!(a.packages, b.packages);
        assert_eq!(a.items, b.items);
    }

    #[test]
    fn view_represents_the_join() {
        let (_, ds) = tiny();
        let rep = ds.factorised_view();
        rep.check_invariants().unwrap();
        assert_eq!(rep.tuple_count(), ds.flat_join_size());
        let flat = rep.flatten().canonical();
        let expected = ds.join().canonical();
        assert_eq!(flat, expected);
    }

    #[test]
    fn succinctness_gap_grows_with_scale() {
        let mut c = Catalog::new();
        let small = generate(
            &mut c,
            &OrdersConfig {
                scale: 1,
                customers: 20,
                seed: 1,
            },
        );
        let big = generate(
            &mut c,
            &OrdersConfig {
                scale: 4,
                customers: 20,
                seed: 1,
            },
        );
        let ratio = |ds: &OrdersDataset| {
            let flat_singletons = (ds.flat_join_size() * 5) as f64;
            flat_singletons / ds.factorised_view().singleton_count() as f64
        };
        let r_small = ratio(&small);
        let r_big = ratio(&big);
        assert!(
            r_big > r_small,
            "gap should widen with scale: {r_small} vs {r_big}"
        );
        assert!(r_small > 1.0, "factorisation must be smaller than flat");
    }

    #[test]
    fn cardinalities_track_parameters() {
        let mut c = Catalog::new();
        let cfg = OrdersConfig {
            scale: 1,
            customers: 50,
            seed: 3,
        };
        let ds = generate(&mut c, &cfg);
        // Orders ≈ customers × 80·s × 2 = 8000; binomial noise is small.
        let expected = 50.0 * 80.0 * 2.0;
        let actual = ds.orders.len() as f64;
        assert!(
            (actual - expected).abs() / expected < 0.2,
            "orders {actual} vs expected {expected}"
        );
        // Items per package averages 20·√s.
        let ipp = ds.packages.len() as f64 / cfg.packages() as f64;
        assert!((ipp - 20.0).abs() < 5.0, "items/package {ipp}");
    }

    #[test]
    fn stats_cover_all_attributes() {
        let (_, ds) = tiny();
        let stats = ds.stats();
        assert_eq!(stats.edges.len(), 3);
    }
}
