//! `ORDER BY … LIMIT k OFFSET m` differential suite: every pagination
//! strategy — count-annotated direct access, (m+k)-heap, restructure +
//! stream-and-skip, collect-sort-cut — must produce the page the
//! relational ground truth produces (stable sort + skip + truncate, i.e.
//! `fdb::relational::ops::page` over the unlimited sorted result), swept
//! over executors {fused, per-op} × threads {1, 2, 4} × OrderMode
//! {Auto, ForceStream, ForceDirect, ForceHeap, ForceSort} and offsets
//! {0, 1, mid, result−1, past-end, huge}.
//!
//! Exactness levels mirror `topk_differential.rs`:
//!
//! * when the ORDER BY keys cover every output column, rows tied on the
//!   keys are *identical* rows, so every strategy is **byte-identical**
//!   to the reference page at every offset;
//! * with duplicate sort keys over distinct rows at the offset boundary,
//!   tie order within equal keys is a per-strategy deterministic choice:
//!   key columns must match the reference, every row must come from the
//!   unlimited result, each configuration must reproduce itself, and the
//!   (m+k)-heap stays byte-identical to sort (stable tie-break);
//! * `Value::Null` sort keys follow `Value::cmp` (NULLS LAST ascending,
//!   first descending) identically in every strategy.

use fdb::core::engine::{ExecutorMode, FdbEngine, OrderMode, OrderStrategy, RunOptions};
use fdb::relational::planner::JoinAggTask;
use fdb::relational::{ops, AggFunc, AggSpec, Relation, Schema, SortKey, Value};
use fdb::workload::orders::{generate, OrdersConfig};
use fdb::Catalog;

fn thread_sweep() -> Vec<usize> {
    vec![1, 2, 4]
}

fn modes() -> [OrderMode; 5] {
    [
        OrderMode::Auto,
        OrderMode::ForceStream,
        OrderMode::ForceDirect,
        OrderMode::ForceHeap,
        OrderMode::ForceSort,
    ]
}

/// The offset grid from the issue: start, one-in, middle, last row,
/// exactly past the end, and absurdly past the end.
fn offset_sweep(result_len: usize) -> Vec<usize> {
    let mut v = vec![
        0,
        1,
        result_len / 2,
        result_len.saturating_sub(1),
        result_len,
        10_000_000,
    ];
    v.sort_unstable();
    v.dedup();
    v
}

fn order_attrs(task: &JoinAggTask) -> Vec<fdb::relational::AttrId> {
    let mut attrs: Vec<fdb::relational::AttrId> = Vec::new();
    for k in &task.order_by {
        if !attrs.contains(&k.attr) {
            attrs.push(k.attr);
        }
    }
    attrs
}

/// Sweeps `base` (its `limit`/`offset` are overridden) over the full
/// mode × executor × thread × offset × limit grid against the stable
/// sort + skip + truncate reference.
///
/// * `byte_identical` — the keys cover every output column, so every
///   strategy must reproduce the reference byte for byte;
/// * `expect_direct` — the f-tree (possibly after restructuring)
///   realises the order with a plain tuple cursor, so `ForceDirect`
///   must actually execute the count-annotated seek and enumerate only
///   the page it returns.
fn assert_pages_agree(
    e: &mut FdbEngine,
    base: &JoinAggTask,
    byte_identical: bool,
    expect_direct: bool,
    label: &str,
) {
    let keys = fdb::relational::dedup_sort_keys(&base.order_by);
    let key_attrs = order_attrs(base);
    let unlimited = {
        let mut t = base.clone();
        t.limit = None;
        t.offset = 0;
        e.run(&t, RunOptions::new().order(OrderMode::ForceSort))
            .unwrap_or_else(|err| panic!("{label}: unlimited reference: {err}"))
            .to_relation()
            .unwrap()
    };
    assert!(unlimited.is_sorted_by(&keys), "{label}: reference sorted");
    let in_unlimited = |row: &[Value]| unlimited.rows().any(|u| u == row);

    for offset in offset_sweep(unlimited.len()) {
        for limit in [None, Some(3)] {
            let expected = ops::page(&unlimited, offset, limit);
            let mut task = base.clone();
            task.offset = offset;
            task.limit = limit;
            for mode in modes() {
                for executor in [ExecutorMode::Staged, ExecutorMode::PerOp] {
                    for threads in thread_sweep() {
                        let ctx = format!(
                            "{label}: {mode:?}/{executor:?}/t{threads} \
                             OFFSET {offset} LIMIT {limit:?}"
                        );
                        let opts = RunOptions::new()
                            .order(mode)
                            .executor(executor)
                            .threads(threads);
                        let (out, stats) = e
                            .run(&task, opts)
                            .unwrap_or_else(|err| panic!("{ctx}: {err}"))
                            .to_relation_counted()
                            .unwrap();
                        assert!(out.is_sorted_by(&keys), "{ctx}: unsorted page");
                        if byte_identical {
                            assert_eq!(out, expected, "{ctx}: page differs from sort+skip+cut");
                        } else {
                            assert_eq!(
                                out.project_cols(&key_attrs),
                                expected.project_cols(&key_attrs),
                                "{ctx}: key columns differ from sort+skip+cut"
                            );
                            assert!(
                                out.rows().all(&in_unlimited),
                                "{ctx}: row not in unlimited result"
                            );
                        }
                        match mode {
                            // Heap ≡ stable sort + page, byte for byte:
                            // the (m+k)-heap keeps the stably-first m+k
                            // rows and drops the first m.
                            OrderMode::ForceHeap | OrderMode::ForceSort => {
                                assert_eq!(out, expected, "{ctx}: differs from reference");
                            }
                            OrderMode::ForceDirect if expect_direct => {
                                assert!(
                                    matches!(stats.strategy, OrderStrategy::DirectAccess),
                                    "{ctx}: expected the direct-access seek, got {:?}",
                                    stats.strategy
                                );
                                // The acceptance property at test scale:
                                // the seek enumerates exactly the page,
                                // never the skipped prefix.
                                assert_eq!(
                                    stats.rows_enumerated,
                                    out.len(),
                                    "{ctx}: direct access enumerated more than the page"
                                );
                            }
                            _ => {}
                        }
                        if mode == OrderMode::ForceHeap && limit.is_some() && offset < 1 << 20 {
                            assert!(
                                matches!(stats.strategy, OrderStrategy::HeapTopK { .. }),
                                "{ctx}: ForceHeap must execute the heap"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// The orders workload with the factorised view registered.
fn orders_engine() -> (FdbEngine, fdb::workload::orders::OrdersDataset) {
    let mut catalog = Catalog::new();
    let ds = generate(
        &mut catalog,
        &OrdersConfig {
            scale: 1,
            customers: 10,
            seed: 0xBEEF,
        },
    );
    let mut e = FdbEngine::new(catalog);
    e.register_view("R1", ds.factorised_view());
    e.register_relation("Orders", ds.orders.clone());
    e.register_relation("Packages", ds.packages.clone());
    e.register_relation("Items", ds.items.clone());
    (e, ds)
}

#[test]
fn realised_order_pages_agree_at_every_offset() {
    // The stored f-tree realises (package, item, date) for free: direct
    // access must seek without restructuring.
    let (mut e, ds) = orders_engine();
    let a = ds.attrs;
    let task = JoinAggTask {
        inputs: vec!["R1".into()],
        projection: Some(vec![a.package, a.item, a.date]),
        order_by: vec![
            SortKey::asc(a.package),
            SortKey::asc(a.item),
            SortKey::asc(a.date),
        ],
        ..Default::default()
    };
    assert_pages_agree(&mut e, &task, true, true, "realised order");
}

#[test]
fn swap_requiring_order_pages_agree_at_every_offset() {
    // (date, package, item) needs restructuring first; the seek then
    // runs over the restructured arena's count annotations.
    let (mut e, ds) = orders_engine();
    let a = ds.attrs;
    let task = JoinAggTask {
        inputs: vec!["R1".into()],
        projection: Some(vec![a.date, a.package, a.item]),
        order_by: vec![
            SortKey::asc(a.date),
            SortKey::asc(a.package),
            SortKey::asc(a.item),
        ],
        ..Default::default()
    };
    assert_pages_agree(&mut e, &task, true, true, "swap order");
}

#[test]
fn mixed_direction_pages_agree_at_every_offset() {
    let (mut e, ds) = orders_engine();
    let a = ds.attrs;
    let task = JoinAggTask {
        inputs: vec!["R1".into()],
        projection: Some(vec![a.package, a.date]),
        order_by: vec![SortKey::desc(a.package), SortKey::asc(a.date)],
        ..Default::default()
    };
    assert_pages_agree(&mut e, &task, true, false, "mixed directions");
}

#[test]
fn aggregate_order_pages_agree_at_every_offset() {
    // ORDER BY the derived aggregate column: direct access is only
    // available via the consolidated grouped arena, and the (m+k)-heap
    // runs over the unrestructured group stream.
    let (mut e, ds) = orders_engine();
    let a = ds.attrs;
    let revenue = e.catalog.intern("rev_page");
    let task = JoinAggTask {
        inputs: vec!["R1".into()],
        group_by: vec![a.customer],
        aggregates: vec![AggSpec::new(AggFunc::Sum(a.price), revenue)],
        order_by: vec![SortKey::desc(revenue), SortKey::asc(a.customer)],
        ..Default::default()
    };
    assert_pages_agree(&mut e, &task, true, false, "aggregate order");
}

#[test]
fn duplicate_rows_at_the_offset_boundary_stay_byte_identical() {
    // Projecting away the discriminating column leaves duplicate sort
    // keys on *identical* rows straddling every page boundary — byte
    // identity must survive because tied rows are indistinguishable.
    let (mut e, ds) = orders_engine();
    let a = ds.attrs;
    let task = JoinAggTask {
        inputs: vec!["R1".into()],
        projection: Some(vec![a.customer, a.package]),
        order_by: vec![SortKey::asc(a.customer), SortKey::asc(a.package)],
        ..Default::default()
    };
    assert_pages_agree(&mut e, &task, true, false, "duplicate rows");
}

#[test]
fn duplicate_sort_keys_over_distinct_rows_at_the_boundary() {
    // Revenue ties by construction (customers pair up with equal
    // totals), no tiebreaker key, and the offsets cut *inside* tie
    // pairs. Tie order within equal keys is per-strategy; the key
    // columns, containment, determinism and heap ≡ sort byte identity
    // are the contract.
    let mut catalog = Catalog::new();
    let customer = catalog.intern("customer");
    let order_id = catalog.intern("order_id");
    let amount = catalog.intern("amount");
    let rows: Vec<Vec<Value>> = (0..12i64)
        .flat_map(|c| {
            (0..3i64).map(move |o| {
                vec![
                    Value::Int(c),
                    Value::Int(c * 10 + o),
                    Value::Int(50 * (c / 2)),
                ]
            })
        })
        .collect();
    let sales = Relation::from_rows(Schema::new(vec![customer, order_id, amount]), rows);
    let mut e = FdbEngine::new(catalog);
    e.register_relation("Sales", sales);
    let revenue = e.catalog.intern("revenue");
    let base = JoinAggTask {
        inputs: vec!["Sales".into()],
        group_by: vec![customer],
        aggregates: vec![AggSpec::new(AggFunc::Sum(amount), revenue)],
        order_by: vec![SortKey::desc(revenue)], // ties, no tiebreaker
        ..Default::default()
    };
    // 12 groups in 6 tie pairs: every odd offset cuts inside a pair.
    assert_pages_agree(&mut e, &base, false, false, "tie boundary");
    // Determinism on the sharpest cut: offset and limit both end inside
    // tie pairs.
    let mut task = base.clone();
    task.offset = 3;
    task.limit = Some(2);
    for mode in modes() {
        for executor in [ExecutorMode::Staged, ExecutorMode::PerOp] {
            for threads in thread_sweep() {
                let opts = RunOptions::new()
                    .order(mode)
                    .executor(executor)
                    .threads(threads);
                let mut run = || e.run(&task, opts).unwrap().to_relation().unwrap();
                assert_eq!(
                    run(),
                    run(),
                    "tie boundary rerun: {mode:?}/{executor:?}/t{threads}"
                );
            }
        }
    }
}

#[test]
fn null_sort_keys_page_identically() {
    // NULLS LAST ascending, first descending — `Value::cmp` is the
    // single source of truth, so pages cut inside the NULL run agree
    // byte for byte across every strategy.
    let mut catalog = Catalog::new();
    let id = catalog.intern("id");
    let score = catalog.intern("score");
    let rows: Vec<Vec<Value>> = (0..20i64)
        .map(|i| {
            vec![
                Value::Int(i),
                if i % 4 == 0 {
                    Value::Null
                } else {
                    Value::Int(i % 5)
                },
            ]
        })
        .collect();
    let rel = Relation::from_rows(Schema::new(vec![id, score]), rows);
    let mut e = FdbEngine::new(catalog);
    e.register_relation("T", rel);
    for dir in [SortKey::asc(score), SortKey::desc(score)] {
        let task = JoinAggTask {
            inputs: vec!["T".into()],
            projection: Some(vec![score, id]),
            order_by: vec![dir, SortKey::asc(id)],
            ..Default::default()
        };
        assert_pages_agree(
            &mut e,
            &task,
            true,
            false,
            &format!("null keys {:?}", dir.dir),
        );
    }
}
