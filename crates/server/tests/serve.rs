//! Integration tests: a live `fdb-server` against real sockets —
//! protocol conformance, 16-way concurrent byte-identity with the
//! library execution, LOAD/epoch behaviour, deadlines, plan-cache
//! hits and clean shutdown.

use fdb::workload::orders::{generate, OrdersConfig};
use fdb::{Catalog, Db, FdbEngine, Relation, Schema, Value};
use fdb_server::proto::{render_outcome, split_fields};
use fdb_server::{spawn, Client, ServerOptions};
use std::time::Duration;

/// The pizzeria database behind a [`Db`].
fn pizzeria_db() -> Db {
    let mut catalog = Catalog::new();
    let data = fdb::workload::pizzeria::pizzeria(&mut catalog);
    let mut engine = FdbEngine::new(catalog);
    engine.register_relation("Orders", data.orders);
    engine.register_relation("Pizzas", data.pizzas);
    engine.register_relation("Items", data.items);
    Db::from_engine(engine)
}

/// The paper's Orders/Packages/Items database behind a [`Db`].
fn orders_db() -> Db {
    let mut catalog = Catalog::new();
    let ds = generate(
        &mut catalog,
        &OrdersConfig {
            scale: 1,
            customers: 15,
            seed: 7,
        },
    );
    let mut engine = FdbEngine::new(catalog);
    engine.register_relation("Orders", ds.orders);
    engine.register_relation("Packages", ds.packages);
    engine.register_relation("Items", ds.items);
    Db::from_engine(engine)
}

fn stat(payload: &[String], key: &str) -> String {
    payload
        .iter()
        .map(|l| split_fields(l).unwrap())
        .find(|f| f[0] == key)
        .unwrap_or_else(|| panic!("no `{key}` in STATS"))[1]
        .clone()
}

#[test]
fn protocol_basics() {
    let mut server = spawn(pizzeria_db(), "127.0.0.1:0", ServerOptions::new()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    assert_eq!(c.request("PING").unwrap().unwrap(), Vec::<String>::new());

    let rows = c
        .query("SELECT SUM(price) AS total FROM Orders, Pizzas, Items")
        .unwrap()
        .unwrap();
    assert_eq!(rows, vec!["total".to_string(), "40".to_string()]);

    let explain = c
        .request("EXPLAIN SELECT SUM(price) AS total FROM Orders, Pizzas, Items")
        .unwrap()
        .unwrap();
    assert!(explain.iter().any(|l| l.contains("f-plan")), "{explain:?}");

    // Errors keep the connection usable.
    let err = c.request("FROBNICATE now").unwrap().unwrap_err();
    assert!(err.contains("unknown verb"), "{err}");
    let err = c.query("SELECT nothing FROM Nowhere").unwrap().unwrap_err();
    assert!(!err.is_empty());
    let stats = c.request("STATS").unwrap().unwrap();
    assert_eq!(stat(&stats, "relations"), "Items,Orders,Pizzas");
    assert_eq!(stat(&stats, "errors"), "2");

    c.quit().unwrap();
    server.shutdown();
}

/// The acceptance bar: 16 concurrent connections, interleaved queries,
/// every response byte-identical to the single-threaded library run.
#[test]
fn sixteen_connections_byte_identical_to_library() {
    let db = orders_db();
    let queries = [
        "SELECT customer, SUM(price) AS revenue FROM Orders, Packages, Items \
         GROUP BY customer ORDER BY revenue DESC, customer LIMIT 10",
        "SELECT COUNT(*) AS n FROM Orders, Packages, Items",
        "SELECT package, COUNT(*) AS items FROM Packages GROUP BY package ORDER BY package",
        "SELECT customer, date, SUM(price) AS spent FROM Orders, Packages, Items \
         GROUP BY customer, date ORDER BY customer, date",
    ];
    // Single-threaded library ground truth, rendered exactly as the
    // server renders (header + escaped TAB-joined rows).
    let expected: Vec<Vec<String>> = queries
        .iter()
        .map(|sql| {
            let mut session = db.session();
            let outcome = session.query(sql).unwrap();
            render_outcome(&outcome)
        })
        .collect();

    // No deadline: 16 concurrent debug-build executions on a loaded CI
    // box can exceed any fixed budget, and this test pins identity,
    // not latency.
    let opts = ServerOptions::new().workers(16).deadline(None);
    let mut server = spawn(db, "127.0.0.1:0", opts).unwrap();
    let addr = server.addr();

    std::thread::scope(|scope| {
        for t in 0..16 {
            let expected = &expected;
            scope.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                // Interleave: each connection walks the query list
                // several times, starting at a different offset.
                for i in 0..8 {
                    let q = (t + i) % queries.len();
                    let got = c.query(queries[q]).unwrap().unwrap();
                    assert_eq!(got, expected[q], "conn {t}, query {q}");
                }
                c.quit().unwrap();
            });
        }
    });

    // All 16 connections were truly concurrent (held open together).
    let mut c = Client::connect(addr).unwrap();
    let stats = c.request("STATS").unwrap().unwrap();
    assert_eq!(stat(&stats, "queries"), format!("{}", 16 * 8));
    server.shutdown();
}

#[test]
fn load_registers_a_view_and_bumps_the_epoch() {
    // Persist a factorised view to a temp file.
    let mut catalog = Catalog::new();
    let ds = generate(
        &mut catalog,
        &OrdersConfig {
            scale: 1,
            customers: 10,
            seed: 21,
        },
    );
    let mut producer = FdbEngine::new(catalog);
    producer.register_view("R1", ds.factorised_view());
    let dir = std::env::temp_dir().join("fdb_server_load_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("r1.fdbv1");
    {
        let file = std::fs::File::create(&path).unwrap();
        producer
            .save_view("R1", std::io::BufWriter::new(file))
            .unwrap();
    }

    let mut server = spawn(pizzeria_db(), "127.0.0.1:0", ServerOptions::new()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    let before: u64 = stat(&c.request("STATS").unwrap().unwrap(), "epoch")
        .parse()
        .unwrap();
    c.request(&format!("LOAD OrdersView {}", path.display()))
        .unwrap()
        .unwrap();
    let stats = c.request("STATS").unwrap().unwrap();
    let after: u64 = stat(&stats, "epoch").parse().unwrap();
    assert!(after > before, "LOAD must bump the epoch");
    assert_eq!(stat(&stats, "views"), "OrdersView");

    // The loaded view is queryable on the same connection.
    let rows = c
        .query("SELECT COUNT(*) AS n FROM OrdersView")
        .unwrap()
        .unwrap();
    assert_eq!(rows[0], "n");
    assert!(rows[1].parse::<i64>().unwrap() > 0);

    // Loading from a missing path reports, doesn't wedge.
    let err = c
        .request("LOAD Broken /nonexistent/path.fdbv1")
        .unwrap()
        .unwrap_err();
    assert!(err.contains("cannot open"), "{err}");

    c.quit().unwrap();
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn zero_deadline_reports_deadline_exceeded() {
    let opts = ServerOptions::new().deadline(Some(Duration::ZERO));
    let mut server = spawn(pizzeria_db(), "127.0.0.1:0", opts).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let err = c
        .query("SELECT SUM(price) AS total FROM Orders, Pizzas, Items")
        .unwrap()
        .unwrap_err();
    assert!(err.contains("deadline exceeded"), "{err}");
    // The worker survives; the connection still answers.
    assert!(c.request("PING").unwrap().is_ok());
    c.quit().unwrap();
    server.shutdown();
}

#[test]
fn plan_cache_serves_repeats_identically() {
    let mut server = spawn(pizzeria_db(), "127.0.0.1:0", ServerOptions::new()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let sql = "SELECT customer, SUM(price) AS spent FROM Orders, Pizzas, Items \
               GROUP BY customer ORDER BY spent DESC";
    let first = c.query(sql).unwrap().unwrap();
    // Same query, different whitespace: normalisation must hit.
    let second = c
        .query(
            "SELECT customer,  SUM(price) AS spent FROM Orders, Pizzas, Items \
                GROUP BY customer    ORDER BY spent DESC;",
        )
        .unwrap()
        .unwrap();
    assert_eq!(first, second);
    let stats = c.request("STATS").unwrap().unwrap();
    assert_eq!(stat(&stats, "cache_hits"), "1");
    assert_eq!(stat(&stats, "cache_misses"), "1");
    c.quit().unwrap();
    server.shutdown();
}

#[test]
fn stats_reports_per_strategy_query_counts() {
    let mut server = spawn(pizzeria_db(), "127.0.0.1:0", ServerOptions::new()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    // Unordered: plain aggregate, no ORDER BY.
    c.query("SELECT SUM(price) AS total FROM Orders, Pizzas, Items")
        .unwrap()
        .unwrap();
    // Streamed: ORDER BY on a group attribute, realised in-tree.
    c.query(
        "SELECT customer, SUM(price) AS spent FROM Orders, Pizzas, Items \
         GROUP BY customer ORDER BY customer",
    )
    .unwrap()
    .unwrap();
    let stats = c.request("STATS").unwrap().unwrap();
    assert_eq!(stat(&stats, "strategy_unordered"), "1");
    assert_eq!(stat(&stats, "strategy_stream"), "1");
    assert_eq!(stat(&stats, "strategy_direct"), "0");
    // A cached repeat must NOT bump the executed-strategy counters.
    c.query("SELECT SUM(price) AS total FROM Orders, Pizzas, Items")
        .unwrap()
        .unwrap();
    let stats = c.request("STATS").unwrap().unwrap();
    assert_eq!(stat(&stats, "strategy_unordered"), "1");
    assert_eq!(stat(&stats, "cache_hits"), "1");
    // Total executed queries = sum of the per-strategy counters + hits.
    let executed: u64 = [
        "strategy_unordered",
        "strategy_stream",
        "strategy_direct",
        "strategy_heap",
        "strategy_sort",
    ]
    .iter()
    .map(|k| stat(&stats, k).parse::<u64>().unwrap())
    .sum();
    let hits: u64 = stat(&stats, "cache_hits").parse().unwrap();
    let queries: u64 = stat(&stats, "queries").parse().unwrap();
    assert_eq!(executed + hits, queries);
    c.quit().unwrap();
    server.shutdown();
}

/// Regression: the cache key must not collapse whitespace inside string
/// literals. Before the fix, `normalise_sql` keyed `'a b'` and `'a  b'`
/// identically, so the second query was served the first query's cached
/// response — wrong rows, straight off the socket.
#[test]
fn cache_keeps_literals_with_different_whitespace_distinct() {
    let mut catalog = Catalog::new();
    let name = catalog.intern("name");
    let qty = catalog.intern("qty");
    let rel = Relation::from_rows(
        Schema::new(vec![name, qty]),
        [("a b", 1i64), ("a  b", 2)]
            .into_iter()
            .map(|(n, q)| vec![Value::str(n), Value::Int(q)]),
    );
    let mut engine = FdbEngine::new(catalog);
    engine.register_relation("T", rel);
    let mut server = spawn(Db::from_engine(engine), "127.0.0.1:0", ServerOptions::new()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    let one = c
        .query("SELECT SUM(qty) AS s FROM T WHERE name = 'a b'")
        .unwrap()
        .unwrap();
    assert_eq!(one, vec!["s".to_string(), "1".to_string()]);
    // Differs only in the literal's internal whitespace — a distinct
    // query with a distinct answer, not a cache hit on the one above.
    let two = c
        .query("SELECT SUM(qty) AS s FROM T WHERE name = 'a  b'")
        .unwrap()
        .unwrap();
    assert_eq!(two, vec!["s".to_string(), "2".to_string()]);

    let stats = c.request("STATS").unwrap().unwrap();
    assert_eq!(stat(&stats, "cache_hits"), "0");
    assert_eq!(stat(&stats, "cache_misses"), "2");
    // Layout whitespace *outside* literals still normalises to a hit.
    let again = c
        .query("SELECT  SUM(qty)  AS s FROM T WHERE name = 'a  b' ;")
        .unwrap()
        .unwrap();
    assert_eq!(again, two);
    let stats = c.request("STATS").unwrap().unwrap();
    assert_eq!(stat(&stats, "cache_hits"), "1");
    c.quit().unwrap();
    server.shutdown();
}

#[test]
fn shutdown_is_clean_with_idle_connections() {
    let mut server = spawn(
        pizzeria_db(),
        "127.0.0.1:0",
        ServerOptions::new().workers(2),
    )
    .unwrap();
    let addr = server.addr();
    // Hold two idle connections open — shutdown must not hang on them.
    let idle1 = Client::connect(addr).unwrap();
    let idle2 = Client::connect(addr).unwrap();
    let started = std::time::Instant::now();
    server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown blocked on idle connections"
    );
    drop((idle1, idle2));
    // The listener is gone: a fresh connection now fails or yields EOF.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => {
            assert!(c.request("PING").is_err(), "server accepted after shutdown");
        }
    }
}

#[test]
fn auto_worker_count_tracks_available_parallelism() {
    let mut server = spawn(
        pizzeria_db(),
        "127.0.0.1:0",
        ServerOptions::new().workers(0),
    )
    .unwrap();
    assert_eq!(server.workers(), fdb_server::auto_workers());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The old rule floored auto at DEFAULT_WORKERS (16) regardless of
    // hardware; the floor must now track the machine: at most 2× the
    // available parallelism, and never starving bigger machines.
    assert!(
        server.workers() <= 2 * cores,
        "auto pool ({}) oversubscribes {cores} core(s)",
        server.workers()
    );
    assert!(server.workers() >= cores.min(fdb_server::DEFAULT_WORKERS));
    // A PING round-trips on the auto-sized pool.
    let mut c = Client::connect(server.addr()).unwrap();
    assert_eq!(c.request("PING").unwrap().unwrap(), Vec::<String>::new());
    c.quit().unwrap();
    server.shutdown();

    // Explicit counts are taken literally, no floor applied.
    let mut server = spawn(
        pizzeria_db(),
        "127.0.0.1:0",
        ServerOptions::new().workers(3),
    )
    .unwrap();
    assert_eq!(server.workers(), 3);
    server.shutdown();
}

/// INSERT/DELETE verbs write through the facade: the payload reports the
/// affected counts, the epoch bumps, and subsequent queries on the SAME
/// connection see the new data.
#[test]
fn insert_and_delete_verbs_write_through() {
    let mut server = spawn(pizzeria_db(), "127.0.0.1:0", ServerOptions::new()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    let before = c.query("SELECT COUNT(*) AS n FROM Items").unwrap().unwrap();
    assert_eq!(before, vec!["n".to_string(), "4".to_string()]);
    let epoch0: u64 = stat(&c.request("STATS").unwrap().unwrap(), "epoch")
        .parse()
        .unwrap();

    let report = c
        .request("INSERT INTO Items VALUES ('olives', 2)")
        .unwrap()
        .unwrap();
    assert_eq!(stat(&report, "inserted"), "1");
    assert_eq!(stat(&report, "deleted"), "0");

    let stats = c.request("STATS").unwrap().unwrap();
    let epoch1: u64 = stat(&stats, "epoch").parse().unwrap();
    assert!(epoch1 > epoch0, "a write must bump the epoch");
    assert_eq!(stat(&stats, "writes"), "1");

    let after = c.query("SELECT COUNT(*) AS n FROM Items").unwrap().unwrap();
    assert_eq!(after, vec!["n".to_string(), "5".to_string()]);

    // Re-inserting the same tuple is a set-semantics no-op: zero rows
    // affected, and — crucially — NO epoch bump, so cached responses
    // stay valid.
    let report = c
        .request("INSERT INTO Items VALUES ('olives', 2)")
        .unwrap()
        .unwrap();
    assert_eq!(stat(&report, "inserted"), "0");
    let unchanged: u64 = stat(&c.request("STATS").unwrap().unwrap(), "epoch")
        .parse()
        .unwrap();
    assert_eq!(unchanged, epoch1, "no-op write must not bump the epoch");

    let report = c
        .request("DELETE FROM Items WHERE item = 'olives'")
        .unwrap()
        .unwrap();
    assert_eq!(stat(&report, "deleted"), "1");
    let back = c.query("SELECT COUNT(*) AS n FROM Items").unwrap().unwrap();
    assert_eq!(back, before);

    // Errors report and keep the connection usable.
    let err = c
        .request("INSERT INTO Nowhere VALUES (1)")
        .unwrap()
        .unwrap_err();
    assert!(!err.is_empty());
    assert!(c.request("PING").unwrap().is_ok());

    let stats = c.request("STATS").unwrap().unwrap();
    assert_eq!(stat(&stats, "writes"), "4");
    c.quit().unwrap();
    server.shutdown();
}

/// `ROW <i> <sql>` returns exactly the i-th row of the full result —
/// header plus one data line — and bumps the `row_lookups` counter.
#[test]
fn row_verb_is_pointwise_access_into_the_full_result() {
    let mut server = spawn(orders_db(), "127.0.0.1:0", ServerOptions::new()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let sql = "SELECT customer, SUM(price) AS revenue FROM Orders, Packages, Items \
               GROUP BY customer ORDER BY revenue DESC, customer";
    let full = c.query(sql).unwrap().unwrap();
    assert!(full.len() >= 4, "need a few rows: {full:?}");

    for i in 0..3u64 {
        let row = c.request(&format!("ROW {i} {sql}")).unwrap().unwrap();
        assert_eq!(row.len(), 2, "header + one row: {row:?}");
        assert_eq!(row[0], full[0], "header must match the full query");
        assert_eq!(row[1], full[1 + i as usize], "ROW {i}");
    }
    // Past the end: header only, no rows — not an error.
    let past = c
        .request(&format!("ROW {} {sql}", full.len()))
        .unwrap()
        .unwrap();
    assert_eq!(past.len(), 1, "{past:?}");

    let stats = c.request("STATS").unwrap().unwrap();
    assert_eq!(stat(&stats, "row_lookups"), "4");

    // Malformed forms report and keep the connection alive.
    let err = c.request("ROW x SELECT 1").unwrap().unwrap_err();
    assert!(err.contains("non-negative integer"), "{err}");
    let err = c.request("ROW 3").unwrap().unwrap_err();
    assert!(err.contains("ROW requires"), "{err}");
    // The target query must not carry LIMIT/OFFSET of its own: the
    // appended clause clashes and the parser rejects the duplicate.
    let err = c
        .request(&format!("ROW 0 {sql} LIMIT 2"))
        .unwrap()
        .unwrap_err();
    assert!(!err.is_empty());
    assert!(c.request("PING").unwrap().is_ok());
    c.quit().unwrap();
    server.shutdown();
}

/// Regression: a write must invalidate cached query responses. The cache
/// is keyed by epoch, the write bumps the epoch, so the next repeat is a
/// miss that recomputes against the new snapshot — never a stale hit.
#[test]
fn writes_purge_cached_query_responses() {
    let mut server = spawn(pizzeria_db(), "127.0.0.1:0", ServerOptions::new()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let sql = "SELECT COUNT(*) AS n FROM Items";

    let first = c.query(sql).unwrap().unwrap();
    let repeat = c.query(sql).unwrap().unwrap();
    assert_eq!(first, repeat);
    let stats = c.request("STATS").unwrap().unwrap();
    assert_eq!(stat(&stats, "cache_hits"), "1");

    c.request("INSERT INTO Items VALUES ('anchovies', 3)")
        .unwrap()
        .unwrap();
    let fresh = c.query(sql).unwrap().unwrap();
    assert_eq!(
        fresh,
        vec!["n".to_string(), "5".to_string()],
        "post-write repeat must reflect the write, not the cached response"
    );
    let stats = c.request("STATS").unwrap().unwrap();
    assert_eq!(stat(&stats, "cache_hits"), "1", "stale entry must not hit");
    assert_eq!(stat(&stats, "cache_misses"), "2");
    c.quit().unwrap();
    server.shutdown();
}

/// MVCC across the serving layer: a library session opened before a
/// server-side write keeps its snapshot; sessions opened after see the
/// new state.
#[test]
fn sessions_opened_before_a_write_keep_their_snapshot() {
    let db = pizzeria_db();
    let mut old_session = db.session();
    let mut server = spawn(db.clone(), "127.0.0.1:0", ServerOptions::new()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    c.request("INSERT INTO Items VALUES ('capers', 1)")
        .unwrap()
        .unwrap();

    // The pre-write session still sees 4 items (its COW snapshot); a
    // fresh session sees 5.
    let sql = "SELECT COUNT(*) AS n FROM Items";
    let old = old_session.query(sql).unwrap();
    assert_eq!(format!("{:?}", old.rows.row(0)[0]), "Int(4)");
    let mut new_session = db.session();
    let new = new_session.query(sql).unwrap();
    assert_eq!(format!("{:?}", new.rows.row(0)[0]), "Int(5)");
    c.quit().unwrap();
    server.shutdown();
}

/// Regression for re-LOAD: loading a view under a name that is already
/// registered replaces it, purges stale cached responses (epoch bump),
/// and in-flight sessions pinned to the old snapshot finish cleanly.
#[test]
fn reload_replaces_view_and_purges_stale_cache() {
    // Two serialised views with different cardinalities.
    let dir = std::env::temp_dir().join("fdb_server_reload_test");
    std::fs::create_dir_all(&dir).unwrap();
    let mut paths = Vec::new();
    for (i, customers) in [10u32, 20].into_iter().enumerate() {
        let mut catalog = Catalog::new();
        let ds = generate(
            &mut catalog,
            &OrdersConfig {
                scale: 1,
                customers,
                seed: 21,
            },
        );
        let mut producer = FdbEngine::new(catalog);
        producer.register_view("R1", ds.factorised_view());
        let path = dir.join(format!("reload_{i}.fdbv1"));
        let file = std::fs::File::create(&path).unwrap();
        producer
            .save_view("R1", std::io::BufWriter::new(file))
            .unwrap();
        paths.push(path);
    }

    let db = pizzeria_db();
    let mut server = spawn(db.clone(), "127.0.0.1:0", ServerOptions::new()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    c.request(&format!("LOAD V {}", paths[0].display()))
        .unwrap()
        .unwrap();
    let sql = "SELECT COUNT(*) AS n FROM V";
    let n1 = c.query(sql).unwrap().unwrap()[1].parse::<i64>().unwrap();

    // Cache the response, then pin an in-flight library session to the
    // first snapshot before re-loading.
    let cached = c.query(sql).unwrap().unwrap();
    assert_eq!(
        stat(&c.request("STATS").unwrap().unwrap(), "cache_hits"),
        "1"
    );
    let mut inflight = db.session();

    c.request(&format!("LOAD V {}", paths[1].display()))
        .unwrap()
        .unwrap();
    let n2 = c.query(sql).unwrap().unwrap()[1].parse::<i64>().unwrap();
    assert_ne!(n1, n2, "the two serialised views must differ");
    assert_eq!(
        stat(&c.request("STATS").unwrap().unwrap(), "cache_hits"),
        "1",
        "re-LOAD must purge the stale cached response"
    );
    assert_eq!(cached[1].parse::<i64>().unwrap(), n1);

    // The in-flight session still answers — against the OLD snapshot.
    let old = inflight.query(sql).unwrap();
    assert_eq!(format!("{:?}", old.rows.row(0)[0]), format!("Int({n1})"));

    // STATS lists the view once, not twice.
    assert_eq!(
        stat(&c.request("STATS").unwrap().unwrap(), "views"),
        "V",
        "re-LOAD must replace, not duplicate"
    );
    c.quit().unwrap();
    server.shutdown();
    for p in paths {
        std::fs::remove_file(p).ok();
    }
}
